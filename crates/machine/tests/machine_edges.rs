//! Edge-case integration tests of the machine substrate.

use std::sync::Arc;

use numa_machine::uma::{UmaConfig, UmaCtx, UmaMachine};
use numa_machine::{AccessKind, Machine, MachineConfig, Mem, PhysPage, ProcCore};

fn machine(nodes: usize) -> Arc<Machine> {
    Machine::new(MachineConfig {
        nodes,
        frames_per_node: 16,
        skew_window_ns: None,
        ..MachineConfig::default()
    })
    .unwrap()
}

#[test]
fn block_charges_span_buckets_without_self_queueing() {
    // A long local stream (several buckets worth) must see zero queueing
    // delay: a self-paced processor cannot contend with itself.
    let m = machine(2);
    let mut core = ProcCore::new(Arc::clone(&m), 0, 0);
    core.charge_word_block(PhysPage::new(0, 0), AccessKind::Read, 4096);
    // A local stream saturates its own module exactly (service ==
    // latency); the bucketed model's chunk/bucket misalignment may charge
    // a sub-percent residue, but no real queueing.
    let delay = core.counters().queue_delay_ns;
    let stream = 4096 * 320;
    assert!(
        delay < stream / 100,
        "self-paced local stream must not materially self-queue: {delay} ns"
    );
    assert_eq!(core.vtime(), stream + delay);
    assert_eq!(core.counters().local_reads, 4096);

    // A remote stream runs at 12% utilization: exactly zero queueing.
    // (Fresh machine: the local stream above already booked module 0's
    // buckets over the same virtual times.)
    let m = machine(2);
    let mut r = ProcCore::new(Arc::clone(&m), 1, 0);
    r.charge_word_block(PhysPage::new(0, 0), AccessKind::Read, 2048);
    assert_eq!(r.counters().remote_reads, 2048);
    assert_eq!(r.counters().queue_delay_ns, 0);
    assert_eq!(r.vtime(), 2048 * 5000);
}

#[test]
#[should_panic(expected = "onto itself")]
fn block_transfer_to_same_frame_panics() {
    let m = machine(2);
    let mut core = ProcCore::new(m, 0, 0);
    core.block_transfer(PhysPage::new(0, 0), PhysPage::new(0, 0));
}

#[test]
fn big_machines_boot_beyond_the_old_64_node_cap() {
    for nodes in [64usize, 65, 128, 256] {
        let m = Machine::new(MachineConfig {
            nodes,
            frames_per_node: 2,
            skew_window_ns: None,
            ..MachineConfig::default()
        })
        .unwrap();
        assert_eq!(m.nprocs(), nodes);
        // The highest processor charges locally and remotely: processor
        // sets no longer truncate at bit 63.
        let mut core = ProcCore::new(Arc::clone(&m), nodes - 1, 0);
        core.charge_word_access(PhysPage::new(nodes - 1, 1), AccessKind::Write);
        core.charge_word_access(PhysPage::new(0, 0), AccessKind::Read);
        assert_eq!(core.counters().local_writes, 1);
        assert_eq!(core.counters().remote_reads, 1);
    }
    assert!(Machine::new(MachineConfig {
        nodes: 4097,
        ..MachineConfig::default()
    })
    .is_err());
}

#[test]
fn uma_ctx_publishes_idle_on_drop_and_while_waiting() {
    let m = UmaMachine::new(UmaConfig {
        procs: 2,
        mem_words: 1 << 12,
        ..UmaConfig::default()
    })
    .unwrap();
    {
        let mut a = UmaCtx::new(Arc::clone(&m), 0);
        let mut b = UmaCtx::new(Arc::clone(&m), 1);
        // b races far ahead; a waits; the skew window must not deadlock
        // because waiting processors publish idle.
        a.begin_wait();
        for i in 0..100_000u64 {
            b.write((i % 512) * 4, i as u32);
        }
        a.end_wait();
        assert!(b.vtime() > 0);
    } // both drop here
      // After drop, a fresh context can run ahead freely (dropped
      // processors do not hold the window's minimum down).
    let mut c = UmaCtx::new(m, 0);
    for i in 0..100_000u64 {
        c.write((i % 512) * 4, i as u32);
    }
}

#[test]
fn uma_read_spin_is_uncharged_but_sees_fresh_data() {
    let m = UmaMachine::new(UmaConfig {
        procs: 2,
        mem_words: 1 << 10,
        ..UmaConfig::default()
    })
    .unwrap();
    let mut a = UmaCtx::new(Arc::clone(&m), 0);
    let mut b = UmaCtx::new(Arc::clone(&m), 1);
    b.write(0, 7);
    let before = a.vtime();
    assert_eq!(a.read_spin(0), 7);
    assert_eq!(a.vtime(), before, "spin reads are uncharged");
}

#[test]
fn skew_window_couples_numa_clocks() {
    // With the window on, a runaway processor stalls (in real time)
    // until the other catches up; verify by running both and checking
    // final clock spread stays within the window + one publish interval.
    let m = Machine::new(MachineConfig {
        nodes: 2,
        frames_per_node: 16,
        skew_window_ns: Some(500_000),
        ..MachineConfig::default()
    })
    .unwrap();
    let spread = std::thread::scope(|s| {
        let m1 = Arc::clone(&m);
        let fast = s.spawn(move || {
            let mut c = ProcCore::new(m1, 0, 0);
            for _ in 0..40_000 {
                c.charge_word_access(PhysPage::new(0, 0), AccessKind::Read);
                if c.tick() {
                    while c.should_throttle() {
                        std::thread::yield_now();
                    }
                }
            }
            c.set_idle();
            c.vtime()
        });
        let m2 = Arc::clone(&m);
        let slow = s.spawn(move || {
            let mut c = ProcCore::new(m2, 1, 0);
            for _ in 0..40_000 {
                c.charge_word_access(PhysPage::new(1, 0), AccessKind::Read);
                // The slow processor does extra "compute" per access.
                c.charge(320);
                if c.tick() {
                    while c.should_throttle() {
                        std::thread::yield_now();
                    }
                }
            }
            c.set_idle();
            c.vtime()
        });
        let f = fast.join().unwrap();
        let sl = slow.join().unwrap();
        (f, sl)
    });
    // Both did 40k accesses: fast at 320 ns each (12.8 ms), slow at
    // 640 ns each (25.6 ms). Unthrottled, fast would finish at 12.8 ms;
    // the window forces it to track the slow clock to within ~0.5 ms
    // until the end. We can only assert the mechanism didn't deadlock
    // and both finished with sane clocks.
    assert!(spread.0 >= 40_000 * 320);
    assert!(spread.1 >= 40_000 * 640);
}
