//! Address and identifier types shared by the machine and the kernel.

use core::fmt;

/// A virtual byte address.
///
/// Virtual addresses are plain 64-bit byte offsets; all data accesses are
/// word (32-bit) granular and must be 4-byte aligned, matching the
/// Butterfly Plus whose "typical unit of access is a 32-bit word" (§4.1 of
/// the paper).
pub type Va = u64;

/// A virtual page number (a [`Va`] shifted right by the page shift).
pub type Vpn = u64;

/// A processor (equivalently, node) identifier.
///
/// Processors and memory modules are paired one-to-one per node, as on the
/// Butterfly. At most 64 processors are supported so that processor sets
/// fit in a `u64` bitmask, like the reference masks of §2.3.
pub type ProcId = usize;

/// The identity of a physical page frame: a (memory module, frame index)
/// pair.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PhysPage {
    /// The node whose memory module holds the frame.
    pub module: u32,
    /// The frame index within the module.
    pub frame: u32,
}

impl PhysPage {
    /// Creates a physical page identity.
    pub fn new(module: usize, frame: usize) -> Self {
        Self {
            module: module as u32,
            frame: frame as u32,
        }
    }

    /// The node whose memory module holds the frame, as a `usize`.
    pub fn module_id(&self) -> usize {
        self.module as usize
    }

    /// The frame index within the module, as a `usize`.
    pub fn frame_id(&self) -> usize {
        self.frame as usize
    }
}

impl fmt::Debug for PhysPage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pp({}:{})", self.module, self.frame)
    }
}

/// An error raised by a simulated memory access.
///
/// `NoTranslation` and `Protection` correspond to the MC68851 address
/// translation and protection faults that drive the PLATINUM coherency
/// protocol (§2.1: "Most transitions in the protocol are thus initiated by
/// address translation and protection faults").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessErr {
    /// The address is not 4-byte aligned.
    Misaligned(Va),
    /// No virtual-to-physical translation exists for the page.
    NoTranslation(Va),
    /// A translation exists but does not grant the required right.
    Protection(Va),
    /// The address lies outside any mapped region (a "bus error").
    BusError(Va),
}

impl fmt::Display for AccessErr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessErr::Misaligned(va) => write!(f, "misaligned access at {va:#x}"),
            AccessErr::NoTranslation(va) => write!(f, "no translation for {va:#x}"),
            AccessErr::Protection(va) => write!(f, "protection fault at {va:#x}"),
            AccessErr::BusError(va) => write!(f, "bus error at {va:#x}"),
        }
    }
}

impl std::error::Error for AccessErr {}

/// Returns the set bits of `mask` as processor ids.
pub fn procs_in_mask(mask: u64) -> impl Iterator<Item = ProcId> {
    (0..64).filter(move |p| mask & (1u64 << p) != 0)
}

/// Returns the bitmask with only `proc`'s bit set.
///
/// # Panics
///
/// Panics if `proc >= 64`; processor sets are `u64` bitmasks.
pub fn proc_bit(proc: ProcId) -> u64 {
    assert!(proc < 64, "processor id {proc} out of bitmask range");
    1u64 << proc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phys_page_roundtrip() {
        let pp = PhysPage::new(3, 17);
        assert_eq!(pp.module_id(), 3);
        assert_eq!(pp.frame_id(), 17);
        assert_eq!(format!("{pp:?}"), "pp(3:17)");
    }

    #[test]
    fn mask_iteration() {
        let mask = proc_bit(0) | proc_bit(5) | proc_bit(63);
        let procs: Vec<_> = procs_in_mask(mask).collect();
        assert_eq!(procs, vec![0, 5, 63]);
    }

    #[test]
    #[should_panic(expected = "out of bitmask range")]
    fn proc_bit_overflow_panics() {
        let _ = proc_bit(64);
    }

    #[test]
    fn access_err_display() {
        assert_eq!(
            AccessErr::Protection(0x1000).to_string(),
            "protection fault at 0x1000"
        );
        assert_eq!(
            AccessErr::NoTranslation(0x2000).to_string(),
            "no translation for 0x2000"
        );
    }
}
