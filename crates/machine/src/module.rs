//! Memory modules and their inverted page tables.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::contention::{BucketCursor, BucketedResource};
use crate::frame::Frame;

/// The inverted-page-table tag of a free frame.
const FREE: u64 = 0;

/// One node's memory module.
///
/// Each module holds `frames_per_node` page frames and — as §2.3 of the
/// paper describes — an *inverted page table* with one entry per physical
/// frame recording whether the frame is allocated and to which coherent
/// page. The fault handler probes the inverted page table (a hash of the
/// coherent page index followed by a linear scan) to find a local copy or
/// a free frame using strictly local memory accesses, rather than walking
/// the remote directory list (§3.3).
///
/// The table is lock-free: each entry is an `AtomicU64` holding `owner+1`
/// (so 0 means free), claimed by compare-and-swap. This mirrors §2.2's
/// "wherever possible, atomic memory operations are used to implement
/// concurrent data structures".
pub struct MemoryModule {
    node: usize,
    frames: Box<[Frame]>,
    /// Inverted page table: `owners[f]` is 0 when frame `f` is free, else
    /// the owning coherent page id plus one.
    owners: Box<[AtomicU64]>,
    /// Contention model for word traffic: bucketed utilization (robust
    /// to the loose clock coupling of execution-driven simulation).
    bus: BucketedResource,
    /// Serialization point for block transfers: the engine is FIFO at
    /// the hardware, and transfers from one module genuinely serialize
    /// (§5.1's pivot-row observation). Capped against clock skew.
    block_busy_until: AtomicU64,
    /// Count of allocated frames (statistics only).
    allocated: AtomicU64,
}

/// The result of one inverted-page-table probe sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IptProbe {
    /// The frame found, if any.
    pub frame: Option<usize>,
    /// How many table entries were inspected (charged as local references
    /// by the kernel's cost model).
    pub probes: usize,
}

impl MemoryModule {
    /// Creates the module for `node` with `nframes` frames of
    /// `words_per_page` words each and the given contention-bucket width.
    pub fn new(node: usize, nframes: usize, words_per_page: usize, bucket_ns: u64) -> Self {
        let mut frames = Vec::with_capacity(nframes);
        frames.resize_with(nframes, || Frame::new(words_per_page));
        let mut owners = Vec::with_capacity(nframes);
        owners.resize_with(nframes, || AtomicU64::new(FREE));
        Self {
            node,
            frames: frames.into_boxed_slice(),
            owners: owners.into_boxed_slice(),
            bus: BucketedResource::new(bucket_ns),
            block_busy_until: AtomicU64::new(0),
            allocated: AtomicU64::new(0),
        }
    }

    /// The node this module belongs to.
    pub fn node(&self) -> usize {
        self.node
    }

    /// The number of frames in the module.
    pub fn nframes(&self) -> usize {
        self.frames.len()
    }

    /// The number of currently allocated frames.
    pub fn frames_allocated(&self) -> usize {
        self.allocated.load(Ordering::Relaxed) as usize
    }

    /// Direct access to a frame's storage.
    ///
    /// # Panics
    ///
    /// Panics if `frame` is out of range.
    #[inline]
    pub fn frame(&self, frame: usize) -> &Frame {
        &self.frames[frame]
    }

    /// The owning coherent page recorded for `frame`, if allocated.
    pub fn owner_of(&self, frame: usize) -> Option<u64> {
        match self.owners[frame].load(Ordering::Acquire) {
            FREE => None,
            tagged => Some(tagged - 1),
        }
    }

    fn hash_slot(&self, cpage: u64) -> usize {
        // Fibonacci hash of the coherent page index, as a stand-in for the
        // paper's unspecified "hash function applied to the index of the
        // Cpage".
        (cpage.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % self.frames.len()
    }

    /// Probes the inverted page table for the local physical copy of
    /// coherent page `cpage` (§3.3's local-copy lookup).
    pub fn find_frame_of(&self, cpage: u64) -> IptProbe {
        let tagged = cpage + 1;
        let start = self.hash_slot(cpage);
        let n = self.frames.len();
        for i in 0..n {
            let slot = (start + i) % n;
            if self.owners[slot].load(Ordering::Acquire) == tagged {
                return IptProbe {
                    frame: Some(slot),
                    probes: i + 1,
                };
            }
        }
        IptProbe {
            frame: None,
            probes: n,
        }
    }

    /// Allocates a free frame for coherent page `cpage` by probing from
    /// the page's hash slot and claiming the first free entry with a
    /// compare-and-swap.
    ///
    /// Returns `None` when the module is out of frames.
    pub fn alloc_frame(&self, cpage: u64) -> Option<IptProbe> {
        let tagged = cpage + 1;
        let start = self.hash_slot(cpage);
        let n = self.frames.len();
        for i in 0..n {
            let slot = (start + i) % n;
            if self.owners[slot]
                .compare_exchange(FREE, tagged, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                self.allocated.fetch_add(1, Ordering::Relaxed);
                return Some(IptProbe {
                    frame: Some(slot),
                    probes: i + 1,
                });
            }
        }
        None
    }

    /// Frees `frame`, returning it to the free pool.
    ///
    /// The paper charges one remote read and one remote write for freeing
    /// a physical page (§4); the kernel's cost model does that charging.
    ///
    /// # Panics
    ///
    /// Panics if the frame was already free — double frees are kernel bugs.
    pub fn free_frame(&self, frame: usize) {
        let prev = self.owners[frame].swap(FREE, Ordering::AcqRel);
        assert_ne!(
            prev, FREE,
            "double free of frame {frame} on node {}",
            self.node
        );
        self.allocated.fetch_sub(1, Ordering::Relaxed);
    }

    /// Reserves `service_ns` of the module's bus at virtual time `now`,
    /// returning the start time assigned to this request.
    ///
    /// The returned start minus `now` is the queueing delay the requester
    /// experiences; this is the per-module serialization that makes memory
    /// contention visible, the effect §7 argues replication exists to
    /// relieve.
    pub fn reserve(&self, now: u64, service_ns: u64) -> u64 {
        now + self.bus.reserve(now, service_ns)
    }

    /// [`Self::reserve`] with a caller-owned [`BucketCursor`] memoizing
    /// the clock's current contention bucket. Identical result; the
    /// cursor merely keeps the bucket-index division off the per-access
    /// hot path (see `BucketedResource::reserve_with`).
    #[inline(always)]
    pub fn reserve_with(&self, cursor: &mut BucketCursor, now: u64, service_ns: u64) -> u64 {
        now + self.bus.reserve_with(cursor, now, service_ns)
    }

    /// The position of `now` within its contention bucket
    /// (`now % bucket_ns`), via the bus divider's precomputed magic.
    #[inline(always)]
    pub fn bucket_into(&self, now: u64) -> u64 {
        self.bus.bucket_into(now)
    }

    /// Reserves the block-transfer engine and the module bus for a
    /// transfer of `occupancy_ns` starting no earlier than `now`.
    /// Returns the transfer's start time.
    ///
    /// Back-to-back transfers touching this module serialize (the §5.1
    /// pivot-row effect); the serialization horizon is capped at `cap_ns`
    /// beyond `now` so loosely-coupled clocks cannot queue behind
    /// far-future reservations.
    pub fn reserve_block(&self, now: u64, occupancy_ns: u64, cap_ns: u64) -> u64 {
        let mut cur = self.block_busy_until.load(Ordering::Relaxed);
        let start = loop {
            let start = now.max(cur.min(now + cap_ns));
            match self.block_busy_until.compare_exchange_weak(
                cur,
                start + occupancy_ns,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break start,
                Err(actual) => cur = actual,
            }
        };
        // Word traffic during the transfer queues behind its bus share.
        let _ = self.bus.reserve_span(start, occupancy_ns);
        start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_find_free_cycle() {
        let m = MemoryModule::new(0, 8, 16, 100_000);
        assert_eq!(m.frames_allocated(), 0);
        let probe = m.alloc_frame(42).expect("frame available");
        let f = probe.frame.unwrap();
        assert_eq!(m.owner_of(f), Some(42));
        assert_eq!(m.frames_allocated(), 1);

        let found = m.find_frame_of(42);
        assert_eq!(found.frame, Some(f));

        assert_eq!(m.find_frame_of(7).frame, None);

        m.free_frame(f);
        assert_eq!(m.owner_of(f), None);
        assert_eq!(m.frames_allocated(), 0);
        assert_eq!(m.find_frame_of(42).frame, None);
    }

    #[test]
    fn exhaustion_returns_none() {
        let m = MemoryModule::new(0, 4, 8, 100_000);
        for c in 0..4 {
            assert!(m.alloc_frame(c).is_some());
        }
        assert!(m.alloc_frame(99).is_none());
        assert_eq!(m.frames_allocated(), 4);
    }

    #[test]
    fn collision_probing_finds_distinct_frames() {
        let m = MemoryModule::new(0, 8, 8, 100_000);
        // Allocate many pages; every allocation must land on a distinct
        // frame and be findable afterwards.
        let mut frames = Vec::new();
        for c in 0..8u64 {
            let p = m.alloc_frame(c).unwrap();
            frames.push(p.frame.unwrap());
        }
        frames.sort_unstable();
        frames.dedup();
        assert_eq!(frames.len(), 8, "allocations must not alias");
        for c in 0..8u64 {
            assert!(m.find_frame_of(c).frame.is_some());
        }
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let m = MemoryModule::new(0, 4, 8, 100_000);
        let p = m.alloc_frame(1).unwrap();
        let f = p.frame.unwrap();
        m.free_frame(f);
        m.free_frame(f);
    }

    #[test]
    fn reserve_serializes_under_overload() {
        let m = MemoryModule::new(0, 1, 8, 100_000);
        // Below the bucket's service capacity requests pass freely...
        assert_eq!(m.reserve(0, 600), 0);
        assert_eq!(m.reserve(0, 600), 0);
        // ...but overload queues: saturate the bucket, then measure.
        for _ in 0..200 {
            let _ = m.reserve(0, 600);
        }
        assert!(m.reserve(0, 600) > 0, "overloaded module must queue");
        // A request arriving much later sees no residue.
        assert_eq!(m.reserve(10_000_000, 600), 10_000_000);
    }

    #[test]
    fn block_transfers_serialize_with_cap() {
        let m = MemoryModule::new(0, 1, 8, 100_000);
        let s1 = m.reserve_block(0, 800_000, 4_000_000);
        let s2 = m.reserve_block(0, 800_000, 4_000_000);
        assert_eq!(s1, 0);
        assert_eq!(s2, 800_000, "second transfer waits for the engine");
        // A laggard far behind a future reservation is capped.
        let m2 = MemoryModule::new(0, 1, 8, 100_000);
        let _ = m2.reserve_block(50_000_000, 800_000, 4_000_000);
        let s = m2.reserve_block(0, 800_000, 4_000_000);
        assert!(s <= 4_000_000, "cap bounds skew-induced queueing: {s}");
    }

    #[test]
    fn concurrent_alloc_no_alias() {
        use std::sync::Arc;
        let m = Arc::new(MemoryModule::new(0, 64, 8, 100_000));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                for i in 0..16u64 {
                    let p = m.alloc_frame(t * 16 + i).unwrap();
                    got.push(p.frame.unwrap());
                }
                got
            }));
        }
        let mut all: Vec<usize> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 64, "concurrent allocations must not alias");
    }
}
