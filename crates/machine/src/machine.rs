//! The machine: modules, processor signalling state, and global queries.

use std::sync::{Arc, OnceLock};

use platinum_trace::Tracer;

use crate::addr::{PhysPage, ProcId};
use crate::config::MachineConfig;
use crate::frame::Frame;
use crate::module::MemoryModule;
use crate::proc::{ProcShared, IDLE};
use crate::topology::Topology;

/// A simulated NUMA multiprocessor: one processor and one memory module
/// per node, joined by a switch modelled through per-module contention
/// accounting.
///
/// The `Machine` is passive hardware: it owns the storage and the
/// signalling state, while all activity is driven by [`crate::ProcCore`]s
/// owned by the threads simulating each processor, and by the kernel built
/// on top (the `platinum` crate).
pub struct Machine {
    cfg: MachineConfig,
    /// The resolved machine description: `cfg.topology`, or the flat
    /// Butterfly built from `cfg.timing` when none was given. Every
    /// latency charge routes through this.
    topology: Topology,
    modules: Box<[MemoryModule]>,
    shared: Box<[ProcShared]>,
    /// Protocol-event tracer, installed at most once per machine. Every
    /// layer above (kernel, runtime) emits through this single registry
    /// so one timeline covers hardware and kernel events.
    tracer: OnceLock<Arc<Tracer>>,
}

impl Machine {
    /// Builds a machine from `cfg`.
    ///
    /// Returns an error string when the configuration is invalid.
    pub fn new(cfg: MachineConfig) -> Result<Arc<Self>, String> {
        cfg.validate()?;
        let topology = cfg
            .topology
            .clone()
            .unwrap_or_else(|| Topology::flat(cfg.nodes, &cfg.timing));
        let words = cfg.words_per_page();
        let modules = (0..cfg.nodes)
            .map(|n| MemoryModule::new(n, cfg.frames_per_node, words, cfg.contention_bucket_ns))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let shared = (0..cfg.nodes)
            .map(|_| ProcShared::new())
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let tracer = OnceLock::new();
        // A process-global tracer (platinum_trace::install_global) is
        // picked up automatically, so harnesses can enable tracing
        // without threading a handle through every constructor.
        if let Some(t) = platinum_trace::global() {
            let _ = tracer.set(t);
        }
        Ok(Arc::new(Self {
            cfg,
            topology,
            modules,
            shared,
            tracer,
        }))
    }

    /// Installs a protocol-event tracer on this machine. Returns `false`
    /// if one was already installed (the first installation wins).
    ///
    /// Install before attaching any threads: emit sites read the
    /// registry on every event, but a run traced from the middle has a
    /// truncated timeline.
    pub fn install_tracer(&self, tracer: Arc<Tracer>) -> bool {
        self.tracer.set(tracer).is_ok()
    }

    /// The installed tracer, if any.
    #[inline]
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.get()
    }

    /// The machine's configuration.
    #[inline]
    pub fn cfg(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The resolved machine description (defaults to the flat Butterfly
    /// built from `cfg.timing`).
    #[inline]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Cost charged to `from` for interrupting `to` (the per-processor
    /// IPI figure of §4, looked up through the topology).
    #[inline]
    pub fn ipi_cost(&self, from: usize, to: usize) -> u64 {
        self.topology.ipi_cost(from, to)
    }

    /// The number of processors (== nodes == memory modules).
    #[inline]
    pub fn nprocs(&self) -> usize {
        self.cfg.nodes
    }

    /// The memory module on node `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    #[inline]
    pub fn module(&self, m: usize) -> &MemoryModule {
        &self.modules[m]
    }

    /// The signalling state of processor `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[inline]
    pub fn shared(&self, p: ProcId) -> &ProcShared {
        &self.shared[p]
    }

    /// The storage of physical page `pp`.
    ///
    /// # Panics
    ///
    /// Panics if `pp` names a nonexistent module or frame.
    #[inline]
    pub fn frame_data(&self, pp: PhysPage) -> &Frame {
        self.modules[pp.module_id()].frame(pp.frame_id())
    }

    /// Rings processor `target`'s IPI doorbell.
    ///
    /// # Panics
    ///
    /// Panics if `target` is out of range.
    pub fn post_ipi(&self, target: ProcId) {
        self.shared[target].post_ipi();
    }

    /// The minimum published virtual clock over all *running* processors,
    /// or [`IDLE`] if none are running. Used by the skew window.
    pub fn min_running_vtime(&self) -> u64 {
        self.shared
            .iter()
            .map(|s| s.published_vtime())
            .min()
            .unwrap_or(IDLE)
    }

    /// The maximum published virtual clock over running processors, or 0.
    /// Harnesses use this as "the machine's clock" for reporting.
    pub fn max_running_vtime(&self) -> u64 {
        self.shared
            .iter()
            .map(|s| s.published_vtime())
            .filter(|&v| v != IDLE)
            .max()
            .unwrap_or(0)
    }

    /// Total frames allocated across all modules.
    pub fn frames_allocated(&self) -> usize {
        self.modules.iter().map(|m| m.frames_allocated()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_queries() {
        let m = Machine::new(MachineConfig {
            nodes: 4,
            frames_per_node: 8,
            ..MachineConfig::default()
        })
        .unwrap();
        assert_eq!(m.nprocs(), 4);
        assert_eq!(m.module(3).node(), 3);
        assert_eq!(m.frames_allocated(), 0);
        m.module(2).alloc_frame(7).unwrap();
        assert_eq!(m.frames_allocated(), 1);
    }

    #[test]
    fn invalid_config_rejected() {
        let cfg = MachineConfig {
            nodes: 0,
            ..MachineConfig::default()
        };
        assert!(Machine::new(cfg).is_err());
    }

    #[test]
    fn vtime_aggregates() {
        let m = Machine::new(MachineConfig::with_nodes(3)).unwrap();
        assert_eq!(m.min_running_vtime(), IDLE, "all idle at start");
        assert_eq!(m.max_running_vtime(), 0);
    }

    #[test]
    fn frame_data_reachable() {
        let m = Machine::new(MachineConfig {
            nodes: 2,
            frames_per_node: 4,
            ..MachineConfig::default()
        })
        .unwrap();
        let pp = PhysPage::new(1, 2);
        m.frame_data(pp).store(0, 123);
        assert_eq!(m.frame_data(pp).load(0), 123);
    }
}
