//! The per-processor address translation cache (ATC).

use crate::addr::{PhysPage, Vpn};

/// One cached translation.
#[derive(Clone, Copy, Debug)]
struct AtcEntry {
    valid: bool,
    asid: u32,
    vpn: Vpn,
    pp: PhysPage,
    writable: bool,
}

const INVALID: AtcEntry = AtcEntry {
    valid: false,
    asid: 0,
    vpn: 0,
    pp: PhysPage {
        module: 0,
        frame: 0,
    },
    writable: false,
};

/// A direct-mapped software model of the MC68851's address translation
/// cache.
///
/// Each processor owns exactly one `Atc`, and only code running on that
/// processor's thread touches it — shootdown targets invalidate their own
/// ATC from the Cmap synchronization handler, never another processor's
/// (§3.1: address translation caches "are usually private to the processor
/// to which the MMU is attached").
///
/// Entries are tagged by (address-space id, virtual page number). A hit
/// costs nothing extra in the timing model (translation overlaps the
/// access, as in the real MMU); misses are refilled from the per-processor
/// Pmap by the kernel, which charges the walk.
pub struct Atc {
    entries: Box<[AtcEntry]>,
    mask: usize,
    hits: u64,
    misses: u64,
}

impl Atc {
    /// Creates an ATC with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a nonzero power of two.
    pub fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two() && entries > 0,
            "ATC size must be a nonzero power of two"
        );
        Self {
            entries: vec![INVALID; entries].into_boxed_slice(),
            mask: entries - 1,
            hits: 0,
            misses: 0,
        }
    }

    #[inline]
    fn slot(&self, asid: u32, vpn: Vpn) -> usize {
        ((vpn as usize) ^ ((asid as usize) << 3)) & self.mask
    }

    /// Looks up the translation for (`asid`, `vpn`).
    ///
    /// Returns the physical page and whether the cached entry permits
    /// writes. A miss returns `None`; the caller refills from the Pmap.
    #[inline]
    pub fn lookup(&mut self, asid: u32, vpn: Vpn) -> Option<(PhysPage, bool)> {
        let e = &self.entries[self.slot(asid, vpn)];
        if e.valid && e.asid == asid && e.vpn == vpn {
            self.hits += 1;
            Some((e.pp, e.writable))
        } else {
            self.misses += 1;
            None
        }
    }

    /// Installs a translation, evicting whatever shared its slot.
    pub fn insert(&mut self, asid: u32, vpn: Vpn, pp: PhysPage, writable: bool) {
        let slot = self.slot(asid, vpn);
        self.entries[slot] = AtcEntry {
            valid: true,
            asid,
            vpn,
            pp,
            writable,
        };
    }

    /// Invalidates the translation for (`asid`, `vpn`) if cached.
    pub fn invalidate(&mut self, asid: u32, vpn: Vpn) {
        let slot = self.slot(asid, vpn);
        let e = &mut self.entries[slot];
        if e.valid && e.asid == asid && e.vpn == vpn {
            e.valid = false;
        }
    }

    /// Downgrades the cached translation for (`asid`, `vpn`) to read-only
    /// if cached (the shootdown "restrict access rights" directive, §2.3).
    pub fn restrict_to_read(&mut self, asid: u32, vpn: Vpn) {
        let slot = self.slot(asid, vpn);
        let e = &mut self.entries[slot];
        if e.valid && e.asid == asid && e.vpn == vpn {
            e.writable = false;
        }
    }

    /// Invalidates every translation belonging to `asid` (address-space
    /// teardown).
    pub fn flush_asid(&mut self, asid: u32) {
        for e in self.entries.iter_mut() {
            if e.valid && e.asid == asid {
                e.valid = false;
            }
        }
    }

    /// Invalidates the entire cache.
    pub fn flush_all(&mut self) {
        for e in self.entries.iter_mut() {
            e.valid = false;
        }
    }

    /// (hits, misses) counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert() {
        let mut atc = Atc::new(8);
        assert_eq!(atc.lookup(1, 100), None);
        atc.insert(1, 100, PhysPage::new(2, 5), false);
        assert_eq!(atc.lookup(1, 100), Some((PhysPage::new(2, 5), false)));
        let (h, m) = atc.stats();
        assert_eq!((h, m), (1, 1));
    }

    #[test]
    fn distinguishes_address_spaces() {
        let mut atc = Atc::new(8);
        atc.insert(1, 100, PhysPage::new(0, 1), true);
        // Same vpn, different asid must miss (and not alias).
        assert_eq!(atc.lookup(2, 100), None);
    }

    #[test]
    fn conflict_eviction() {
        let mut atc = Atc::new(8);
        // vpn 0 and vpn 8 share slot 0 in an 8-entry direct-mapped cache.
        atc.insert(1, 0, PhysPage::new(0, 0), false);
        atc.insert(1, 8, PhysPage::new(0, 1), false);
        assert_eq!(atc.lookup(1, 0), None, "conflicting entry must evict");
        assert!(atc.lookup(1, 8).is_some());
    }

    #[test]
    fn invalidate_and_restrict() {
        let mut atc = Atc::new(8);
        atc.insert(1, 7, PhysPage::new(3, 3), true);
        atc.restrict_to_read(1, 7);
        assert_eq!(atc.lookup(1, 7), Some((PhysPage::new(3, 3), false)));
        atc.invalidate(1, 7);
        assert_eq!(atc.lookup(1, 7), None);
        // Invalidating a non-resident entry is a no-op.
        atc.invalidate(1, 7);
    }

    #[test]
    fn flushes() {
        let mut atc = Atc::new(8);
        atc.insert(1, 1, PhysPage::new(0, 0), false);
        atc.insert(2, 2, PhysPage::new(0, 1), false);
        atc.flush_asid(1);
        assert_eq!(atc.lookup(1, 1), None);
        assert!(atc.lookup(2, 2).is_some());
        atc.flush_all();
        assert_eq!(atc.lookup(2, 2), None);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_size_panics() {
        let _ = Atc::new(12);
    }
}
