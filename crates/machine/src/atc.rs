//! The per-processor address translation cache (ATC).

use crate::addr::{PhysPage, Vpn};
use crate::frame::Frame;
use crate::module::MemoryModule;

/// One cached translation, with its resolved frame handle embedded and
/// the whole entry aligned to a cache line, so a probe touches exactly
/// one line.
#[derive(Clone, Copy)]
#[repr(align(64))]
struct AtcEntry {
    valid: bool,
    asid: u32,
    vpn: Vpn,
    pp: PhysPage,
    writable: bool,
    handle: FrameHandle,
}

const INVALID: AtcEntry = AtcEntry {
    valid: false,
    asid: 0,
    vpn: 0,
    pp: PhysPage {
        module: 0,
        frame: 0,
    },
    writable: false,
    handle: FrameHandle::NULL,
};

/// A resolved pointer to a translation's frame and home module, cached
/// alongside the ATC entry so a hit can reach storage without walking
/// `Machine::frame_data` (an Arc deref plus two slice indexes) on every
/// access.
///
/// The pointers are borrowed from the [`crate::Machine`] that owns the
/// frame. They stay valid for the machine's whole lifetime: `MemoryModule`
/// allocates its `frames` array once at boot and never grows, shrinks or
/// moves it — `free_frame` only retags the frame's inverted-page-table
/// owner. A handle is only ever dereferenced by the processor core that
/// installed it, which holds an `Arc<Machine>` keeping the storage alive.
#[derive(Clone, Copy)]
pub struct FrameHandle {
    pub(crate) frame: *const Frame,
    pub(crate) module: *const MemoryModule,
    pub(crate) local: bool,
}

impl FrameHandle {
    const NULL: FrameHandle = FrameHandle {
        frame: std::ptr::null(),
        module: std::ptr::null(),
        local: false,
    };

    /// Whether the handle carries no resolved pointers (the entry was
    /// installed through the plain [`Atc::insert`] path).
    #[inline]
    pub fn is_null(&self) -> bool {
        self.frame.is_null()
    }
}

/// Hit/miss counters of an [`Atc`], for locality reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AtcStats {
    /// Lookups satisfied from the cache.
    pub hits: u64,
    /// Lookups that required a Pmap walk.
    pub misses: u64,
}

impl AtcStats {
    /// Hits as a fraction of all lookups (0.0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A direct-mapped software model of the MC68851's address translation
/// cache.
///
/// Each processor owns exactly one `Atc`, and only code running on that
/// processor's thread touches it — shootdown targets invalidate their own
/// ATC from the Cmap synchronization handler, never another processor's
/// (§3.1: address translation caches "are usually private to the processor
/// to which the MMU is attached").
///
/// Entries are tagged by (address-space id, virtual page number). A hit
/// costs nothing extra in the timing model (translation overlaps the
/// access, as in the real MMU); misses are refilled from the per-processor
/// Pmap by the kernel, which charges the walk.
///
/// Alongside each entry the cache can hold a [`FrameHandle`] — resolved
/// frame/module pointers installed by [`Atc::insert_with_refs`] — so the
/// owning processor's access fast path reaches storage without consulting
/// the machine. Handles are slaved to their entry: any operation that
/// invalidates or replaces an entry makes its handle unreachable (lookups
/// check entry validity first) or nulls it.
pub struct Atc {
    entries: Box<[AtcEntry]>,
    mask: usize,
    hits: u64,
    misses: u64,
}

// SAFETY: the raw pointers in `handles` point into a `Machine`'s frame
// storage, which is `Sync` (frames are `AtomicU32` words) and immovable for
// the machine's lifetime. An `Atc` is owned by one `ProcCore`, which holds
// an `Arc<Machine>` keeping that storage alive, so moving the `Atc` to
// another thread along with its core is sound.
unsafe impl Send for Atc {}

impl Atc {
    /// Creates an ATC with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a nonzero power of two.
    pub fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two() && entries > 0,
            "ATC size must be a nonzero power of two"
        );
        Self {
            entries: vec![INVALID; entries].into_boxed_slice(),
            mask: entries - 1,
            hits: 0,
            misses: 0,
        }
    }

    #[inline]
    fn slot(&self, asid: u32, vpn: Vpn) -> usize {
        ((vpn as usize) ^ ((asid as usize) << 3)) & self.mask
    }

    /// Looks up the translation for (`asid`, `vpn`).
    ///
    /// Returns the physical page and whether the cached entry permits
    /// writes. A miss returns `None`; the caller refills from the Pmap.
    #[inline]
    pub fn lookup(&mut self, asid: u32, vpn: Vpn) -> Option<(PhysPage, bool)> {
        let e = &self.entries[self.slot(asid, vpn)];
        if e.valid && e.asid == asid && e.vpn == vpn {
            self.hits += 1;
            Some((e.pp, e.writable))
        } else {
            self.misses += 1;
            None
        }
    }

    /// Looks up the translation for (`asid`, `vpn`) and returns the cached
    /// frame handle with it.
    ///
    /// Hit/miss accounting is identical to [`Atc::lookup`]; the handle may
    /// be null when the entry was installed without resolved pointers, in
    /// which case the caller falls back to resolving through the machine.
    #[inline(always)]
    pub fn lookup_with_handle(
        &mut self,
        asid: u32,
        vpn: Vpn,
    ) -> Option<(PhysPage, bool, FrameHandle)> {
        let e = &self.entries[self.slot(asid, vpn)];
        if e.valid && e.asid == asid && e.vpn == vpn {
            self.hits += 1;
            Some((e.pp, e.writable, e.handle))
        } else {
            self.misses += 1;
            None
        }
    }

    /// Installs a translation, evicting whatever shared its slot.
    ///
    /// The slot's frame handle is nulled: fast-path hits on this entry
    /// fall back to resolving the frame through the machine. Use
    /// [`Atc::insert_with_refs`] to install a resolved handle.
    pub fn insert(&mut self, asid: u32, vpn: Vpn, pp: PhysPage, writable: bool) {
        self.entries[self.slot(asid, vpn)] = AtcEntry {
            valid: true,
            asid,
            vpn,
            pp,
            writable,
            handle: FrameHandle::NULL,
        };
    }

    /// Installs a translation together with resolved frame/module
    /// references, evicting whatever shared its slot.
    ///
    /// `frame` and `module` must be the storage backing `pp` on the machine
    /// the owning processor belongs to; `local` is whether `pp` lives on
    /// the processor's own node.
    #[allow(clippy::too_many_arguments)]
    pub fn insert_with_refs(
        &mut self,
        asid: u32,
        vpn: Vpn,
        pp: PhysPage,
        writable: bool,
        frame: &Frame,
        module: &MemoryModule,
        local: bool,
    ) {
        self.entries[self.slot(asid, vpn)] = AtcEntry {
            valid: true,
            asid,
            vpn,
            pp,
            writable,
            handle: FrameHandle {
                frame: frame as *const Frame,
                module: module as *const MemoryModule,
                local,
            },
        };
    }

    /// Invalidates the translation for (`asid`, `vpn`) if cached.
    pub fn invalidate(&mut self, asid: u32, vpn: Vpn) {
        let e = &mut self.entries[self.slot(asid, vpn)];
        if e.valid && e.asid == asid && e.vpn == vpn {
            e.valid = false;
            e.handle = FrameHandle::NULL;
        }
    }

    /// Downgrades the cached translation for (`asid`, `vpn`) to read-only
    /// if cached (the shootdown "restrict access rights" directive, §2.3).
    pub fn restrict_to_read(&mut self, asid: u32, vpn: Vpn) {
        let e = &mut self.entries[self.slot(asid, vpn)];
        if e.valid && e.asid == asid && e.vpn == vpn {
            e.writable = false;
        }
    }

    /// Invalidates every translation belonging to `asid` (address-space
    /// teardown).
    pub fn flush_asid(&mut self, asid: u32) {
        for e in self.entries.iter_mut() {
            if e.valid && e.asid == asid {
                e.valid = false;
                e.handle = FrameHandle::NULL;
            }
        }
    }

    /// Invalidates the entire cache.
    pub fn flush_all(&mut self) {
        for e in self.entries.iter_mut() {
            e.valid = false;
            e.handle = FrameHandle::NULL;
        }
    }

    /// Hit/miss counters since construction.
    pub fn stats(&self) -> AtcStats {
        AtcStats {
            hits: self.hits,
            misses: self.misses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert() {
        let mut atc = Atc::new(8);
        assert_eq!(atc.lookup(1, 100), None);
        atc.insert(1, 100, PhysPage::new(2, 5), false);
        assert_eq!(atc.lookup(1, 100), Some((PhysPage::new(2, 5), false)));
        let s = atc.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinguishes_address_spaces() {
        let mut atc = Atc::new(8);
        atc.insert(1, 100, PhysPage::new(0, 1), true);
        // Same vpn, different asid must miss (and not alias).
        assert_eq!(atc.lookup(2, 100), None);
    }

    #[test]
    fn conflict_eviction() {
        let mut atc = Atc::new(8);
        // vpn 0 and vpn 8 share slot 0 in an 8-entry direct-mapped cache.
        atc.insert(1, 0, PhysPage::new(0, 0), false);
        atc.insert(1, 8, PhysPage::new(0, 1), false);
        assert_eq!(atc.lookup(1, 0), None, "conflicting entry must evict");
        assert!(atc.lookup(1, 8).is_some());
    }

    #[test]
    fn invalidate_and_restrict() {
        let mut atc = Atc::new(8);
        atc.insert(1, 7, PhysPage::new(3, 3), true);
        atc.restrict_to_read(1, 7);
        assert_eq!(atc.lookup(1, 7), Some((PhysPage::new(3, 3), false)));
        atc.invalidate(1, 7);
        assert_eq!(atc.lookup(1, 7), None);
        // Invalidating a non-resident entry is a no-op.
        atc.invalidate(1, 7);
    }

    #[test]
    fn flushes() {
        let mut atc = Atc::new(8);
        atc.insert(1, 1, PhysPage::new(0, 0), false);
        atc.insert(2, 2, PhysPage::new(0, 1), false);
        atc.flush_asid(1);
        assert_eq!(atc.lookup(1, 1), None);
        assert!(atc.lookup(2, 2).is_some());
        atc.flush_all();
        assert_eq!(atc.lookup(2, 2), None);
    }

    #[test]
    fn handle_lifecycle() {
        let frame = Frame::new(4);
        let module = MemoryModule::new(0, 1, 4, 100_000);
        let mut atc = Atc::new(8);

        // Plain insert carries no handle; lookup_with_handle still counts.
        atc.insert(1, 3, PhysPage::new(0, 0), true);
        let (pp, w, h) = atc.lookup_with_handle(1, 3).expect("resident");
        assert_eq!((pp, w), (PhysPage::new(0, 0), true));
        assert!(h.is_null());

        // insert_with_refs resolves the handle.
        atc.insert_with_refs(1, 3, PhysPage::new(0, 0), true, &frame, &module, true);
        let (_, _, h) = atc.lookup_with_handle(1, 3).expect("resident");
        assert!(!h.is_null());
        assert!(std::ptr::eq(h.frame, &frame));
        assert!(std::ptr::eq(h.module, &module));
        assert!(h.local);

        // Invalidation hides the handle with the entry.
        atc.invalidate(1, 3);
        assert!(atc.lookup_with_handle(1, 3).is_none());

        // Counting matches plain lookup: 2 hits, 1 miss so far.
        let s = atc.stats();
        assert_eq!((s.hits, s.misses), (2, 1));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_size_panics() {
        let _ = Atc::new(12);
    }
}
