//! Physical page frames backed by real word-granular storage.

use std::sync::atomic::{AtomicU32, Ordering};

/// A physical page frame: a page worth of real 32-bit words.
///
/// Frames store real data so that replicas made by the coherent-memory
/// protocol are genuine copies — a protocol bug that lets two replicas
/// diverge produces a wrong application answer rather than just a wrong
/// statistic.
///
/// Words are `AtomicU32` so that the *frozen page* path of the protocol —
/// multiple processors doing fine-grain interleaved accesses to a single
/// physical copy, as the Butterfly's remote memory operations allowed — is
/// well-defined under real threading. Plain program loads and stores use
/// `Relaxed` atomics (which compile to ordinary moves); the Butterfly's
/// atomic remote operations use stronger orderings.
pub struct Frame {
    words: Box<[AtomicU32]>,
}

impl Frame {
    /// Allocates a zeroed frame of `words` 32-bit words.
    pub fn new(words: usize) -> Self {
        let mut v = Vec::with_capacity(words);
        v.resize_with(words, || AtomicU32::new(0));
        Self {
            words: v.into_boxed_slice(),
        }
    }

    /// The number of words in the frame.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the frame has zero words (never true for machine frames).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Reads the word at `idx` (an ordinary program load).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range; the caller translates and
    /// bounds-checks addresses before touching the frame.
    #[inline]
    pub fn load(&self, idx: usize) -> u32 {
        self.words[idx].load(Ordering::Relaxed)
    }

    /// Writes the word at `idx` (an ordinary program store).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[inline]
    pub fn store(&self, idx: usize, val: u32) {
        self.words[idx].store(val, Ordering::Relaxed);
    }

    /// Atomic fetch-and-add on the word at `idx`, modelling the
    /// Butterfly's remote atomic operations.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[inline]
    pub fn fetch_add(&self, idx: usize, delta: u32) -> u32 {
        self.words[idx].fetch_add(delta, Ordering::AcqRel)
    }

    /// Atomic compare-and-exchange on the word at `idx`.
    ///
    /// Returns `Ok(previous)` when the exchange happened, `Err(actual)`
    /// otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[inline]
    pub fn compare_exchange(&self, idx: usize, current: u32, new: u32) -> Result<u32, u32> {
        self.words[idx].compare_exchange(current, new, Ordering::AcqRel, Ordering::Acquire)
    }

    /// Atomic swap of the word at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[inline]
    pub fn swap(&self, idx: usize, val: u32) -> u32 {
        self.words[idx].swap(val, Ordering::AcqRel)
    }

    /// Copies the entire contents of `src` into this frame, word by word,
    /// as the block-transfer engine does during replication/migration.
    ///
    /// The coherency protocol guarantees no writer exists while a page is
    /// copied (all write mappings are restricted first), so the relaxed
    /// per-word copy is race-free in a correct kernel.
    ///
    /// # Panics
    ///
    /// Panics if the frames have different lengths.
    pub fn copy_from(&self, src: &Frame) {
        assert_eq!(
            self.len(),
            src.len(),
            "block transfer between unequal frames"
        );
        // A single memcpy instead of a per-word atomic loop. `AtomicU32`
        // is documented to have the same in-memory representation as
        // `u32`, so reading the source through `*const u32` is sound; the
        // protocol guarantees no writer exists during a block transfer
        // (write mappings are restricted first) and the destination frame
        // is unmapped, so there is no concurrent access to either side.
        // The `assert_ne!(src, dst)` in `ProcCore::block_transfer` (and
        // the distinct-frame invariant of every other caller) guarantees
        // the regions do not overlap.
        if self.words.is_empty() || std::ptr::eq(self, src) {
            return;
        }
        unsafe {
            std::ptr::copy_nonoverlapping(
                src.words[0].as_ptr() as *const u32,
                self.words[0].as_ptr(),
                self.words.len(),
            );
        }
    }

    /// Copies the first `words` words of `src` into this frame — the
    /// state a block transfer leaves behind when the engine fails
    /// mid-copy (fault injection). The destination is not yet published
    /// anywhere, so the torn prefix is never observable; the retry
    /// overwrites it whole-page.
    ///
    /// # Panics
    ///
    /// Panics if `words` exceeds either frame's length.
    pub fn copy_prefix_from(&self, src: &Frame, words: usize) {
        assert!(
            words <= self.len() && words <= src.len(),
            "partial transfer beyond frame bounds"
        );
        if std::ptr::eq(self, src) {
            return;
        }
        for (w, s) in self.words[..words].iter().zip(&src.words[..words]) {
            w.store(s.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    /// Zero-fills the frame (page allocation of a fresh coherent page).
    pub fn zero(&self) {
        for w in self.words.iter() {
            w.store(0, Ordering::Relaxed);
        }
    }

    /// Copies `src` into the frame starting at word `idx` (used by the
    /// kernel's port message transfer and by tests).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn store_slice(&self, idx: usize, src: &[u32]) {
        assert!(idx + src.len() <= self.len(), "store_slice out of bounds");
        // One bounds check, then a straight zip: the compiler turns this
        // into a vectorizable copy while every store stays a relaxed
        // atomic (frozen pages allow concurrent readers of other words).
        for (w, &v) in self.words[idx..idx + src.len()].iter().zip(src) {
            w.store(v, Ordering::Relaxed);
        }
    }

    /// Reads `dst.len()` words starting at word `idx` into `dst`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn load_slice(&self, idx: usize, dst: &mut [u32]) {
        assert!(idx + dst.len() <= self.len(), "load_slice out of bounds");
        for (w, v) in self.words[idx..idx + dst.len()].iter().zip(dst) {
            *v = w.load(Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_store_roundtrip() {
        let f = Frame::new(16);
        assert_eq!(f.len(), 16);
        assert!(!f.is_empty());
        f.store(3, 0xdead_beef);
        assert_eq!(f.load(3), 0xdead_beef);
        assert_eq!(f.load(4), 0);
    }

    #[test]
    fn atomics() {
        let f = Frame::new(4);
        assert_eq!(f.fetch_add(0, 5), 0);
        assert_eq!(f.fetch_add(0, 5), 5);
        assert_eq!(f.load(0), 10);
        assert_eq!(f.compare_exchange(0, 10, 11), Ok(10));
        assert_eq!(f.compare_exchange(0, 10, 12), Err(11));
        assert_eq!(f.swap(0, 99), 11);
    }

    #[test]
    fn block_copy_and_zero() {
        let a = Frame::new(8);
        let b = Frame::new(8);
        for i in 0..8 {
            a.store(i, i as u32 * 7);
        }
        b.copy_from(&a);
        for i in 0..8 {
            assert_eq!(b.load(i), i as u32 * 7);
        }
        b.zero();
        for i in 0..8 {
            assert_eq!(b.load(i), 0);
        }
    }

    #[test]
    fn partial_copy_stops_at_the_prefix() {
        let a = Frame::new(8);
        let b = Frame::new(8);
        for i in 0..8 {
            a.store(i, 100 + i as u32);
            b.store(i, 0xFFFF);
        }
        b.copy_prefix_from(&a, 5);
        for i in 0..5 {
            assert_eq!(b.load(i), 100 + i as u32, "prefix word {i} not copied");
        }
        for i in 5..8 {
            assert_eq!(b.load(i), 0xFFFF, "word {i} beyond the prefix was touched");
        }
        // Self-copy is a no-op, mirroring copy_from.
        a.copy_prefix_from(&a, 8);
        assert_eq!(a.load(0), 100);
    }

    #[test]
    fn slices() {
        let f = Frame::new(8);
        f.store_slice(2, &[1, 2, 3]);
        let mut out = [0u32; 3];
        f.load_slice(2, &mut out);
        assert_eq!(out, [1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "unequal frames")]
    fn copy_between_unequal_frames_panics() {
        Frame::new(4).copy_from(&Frame::new(8));
    }
}
