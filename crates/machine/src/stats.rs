//! Per-processor access statistics.

/// Counters accumulated by one simulated processor.
///
/// These underpin the kernel's post-mortem memory-management report
/// (§4.2 of the paper: "the kernel produces a detailed report on the
/// behavior of memory management").
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AccessCounters {
    /// 32-bit reads satisfied by the local memory module.
    pub local_reads: u64,
    /// 32-bit reads that crossed the switch.
    pub remote_reads: u64,
    /// 32-bit writes to the local module.
    pub local_writes: u64,
    /// 32-bit writes that crossed the switch.
    pub remote_writes: u64,
    /// Atomic read-modify-writes on the local module.
    pub local_atomics: u64,
    /// Atomic read-modify-writes that crossed the switch.
    pub remote_atomics: u64,
    /// Total queueing delay suffered at busy memory modules, in ns.
    pub queue_delay_ns: u64,
    /// Block transfers initiated by this processor.
    pub block_transfers: u64,
    /// Words moved by those block transfers.
    pub block_words: u64,
    /// Interprocessor interrupts handled.
    pub ipis_handled: u64,
    /// Coherent-memory page faults taken (incremented by the kernel).
    pub faults: u64,
    /// Nanoseconds of modelled computation (non-memory work).
    pub compute_ns: u64,
    /// ATC hits (snapshotted from the ATC at collection time).
    pub atc_hits: u64,
    /// ATC misses.
    pub atc_misses: u64,
}

impl AccessCounters {
    /// Total memory references of any kind.
    pub fn total_refs(&self) -> u64 {
        self.local_reads
            + self.remote_reads
            + self.local_writes
            + self.remote_writes
            + self.local_atomics
            + self.remote_atomics
    }

    /// Total references that crossed the switch.
    pub fn remote_refs(&self) -> u64 {
        self.remote_reads + self.remote_writes + self.remote_atomics
    }

    /// Fraction of references that were remote, or 0.0 with no references.
    pub fn remote_fraction(&self) -> f64 {
        let total = self.total_refs();
        if total == 0 {
            0.0
        } else {
            self.remote_refs() as f64 / total as f64
        }
    }

    /// Accumulates `other` into `self` (for summing per-processor
    /// counters into a machine-wide total).
    pub fn merge(&mut self, other: &AccessCounters) {
        self.local_reads += other.local_reads;
        self.remote_reads += other.remote_reads;
        self.local_writes += other.local_writes;
        self.remote_writes += other.remote_writes;
        self.local_atomics += other.local_atomics;
        self.remote_atomics += other.remote_atomics;
        self.queue_delay_ns += other.queue_delay_ns;
        self.block_transfers += other.block_transfers;
        self.block_words += other.block_words;
        self.ipis_handled += other.ipis_handled;
        self.faults += other.faults;
        self.compute_ns += other.compute_ns;
        self.atc_hits += other.atc_hits;
        self.atc_misses += other.atc_misses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_fractions() {
        let c = AccessCounters {
            local_reads: 6,
            remote_reads: 2,
            local_writes: 1,
            remote_writes: 1,
            ..Default::default()
        };
        assert_eq!(c.total_refs(), 10);
        assert_eq!(c.remote_refs(), 3);
        assert!((c.remote_fraction() - 0.3).abs() < 1e-12);
        assert_eq!(AccessCounters::default().remote_fraction(), 0.0);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = AccessCounters {
            local_reads: 1,
            faults: 2,
            queue_delay_ns: 10,
            ..Default::default()
        };
        let b = AccessCounters {
            local_reads: 3,
            faults: 1,
            block_words: 1024,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.local_reads, 4);
        assert_eq!(a.faults, 3);
        assert_eq!(a.block_words, 1024);
        assert_eq!(a.queue_delay_ns, 10);
    }
}
