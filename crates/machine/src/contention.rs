//! The contention model: bucketed resource utilization.
//!
//! Memory modules and buses are modelled as servers with a fixed service
//! rate. A naive "busy-until" scalar breaks under execution-driven
//! simulation because processors' virtual clocks are only loosely coupled
//! (the skew window): a processor running ahead would reserve the server
//! at *future* virtual times and slower processors would then queue
//! behind work that logically follows them, inflating delays by up to the
//! whole skew window.
//!
//! [`BucketedResource`] instead accounts reserved service time in
//! fixed-width virtual-time buckets. A bucket can serve exactly its own
//! width of service; a request at time `t` with service `s` adds `s` to
//! `t`'s bucket and waits for the work the bucket cannot absorb:
//!
//! > `delay = max(0, load_in_bucket + s − width)`
//!
//! where a fresh bucket inherits the previous bucket's overflow
//! (`max(0, prev_load − width)`) as backlog, so saturation accumulates
//! queueing across buckets the way a real server would. Uncontended
//! streams see zero delay, and clock skew beyond the ring's span degrades
//! gracefully to "no contention observed" instead of to garbage.
//!
//! The approximation deliberately forgets arrival order *within* a
//! bucket: below saturation, requests pass through undelayed (the M/D/1
//! low-load limit), and under overload the delay lands on whichever
//! requests find the bucket already full. Individual delays are
//! redistributed but the machine-level throughput bound — the effect the
//! paper's contention analysis cares about — is modelled faithfully, and
//! crucially this holds regardless of how the host OS schedules the
//! simulating threads.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets in the ring. With the default 100 us bucket this
/// spans 6.4 ms of virtual time — comfortably more than the default
/// 2 ms skew window.
const BUCKETS: usize = 64;

const LOAD_BITS: u32 = 40;
const LOAD_MASK: u64 = (1 << LOAD_BITS) - 1;

/// Exact division by a runtime-invariant u64, via the multiply-shift
/// scheme of Granlund & Montgomery ("Division by Invariant Integers using
/// Multiplication", PLDI '94; the round-up variant libdivide ships).
///
/// Virtual clocks cross contention buckets every few charges on the slow
/// path, so the `now / bucket_ns` division runs tens of times per fault
/// and is the single hottest instruction in the uncontended contention
/// model. The divider replaces it with a 64x64→128 multiply plus shifts,
/// returning bit-identical quotients for every `u64` numerator (pinned by
/// the `divider_matches_hardware_division` test).
#[derive(Clone, Copy, Debug)]
pub(crate) struct Divider {
    d: u64,
    magic: u64,
    shift: u32,
    /// Power-of-two divisors skip the multiply; `magic` is unused.
    pow2: bool,
    /// Round-up magics that overflow 64 bits use the add-indicator
    /// sequence `q = (((n - mulhi) >> 1) + mulhi) >> shift`.
    add: bool,
}

impl Divider {
    /// Precomputes the magic for `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero.
    pub(crate) fn new(d: u64) -> Self {
        assert!(d > 0, "division by zero");
        if d.is_power_of_two() {
            return Self {
                d,
                magic: 0,
                shift: d.trailing_zeros(),
                pow2: true,
                add: false,
            };
        }
        let floor_log2 = 63 - d.leading_zeros();
        let pow = 1u128 << (64 + floor_log2);
        let proposed = (pow / d as u128) as u64;
        let rem = (pow % d as u128) as u64;
        let e = d - rem;
        if e < (1u64 << floor_log2) {
            // The round-down magic is exact at this shift.
            Self {
                d,
                magic: proposed.wrapping_add(1),
                shift: floor_log2,
                pow2: false,
                add: false,
            }
        } else {
            // Need one more magic bit: fold its overflow into the
            // add-indicator division sequence.
            // The doubled magic's 65th bit is implicit: the add-indicator
            // division sequence reconstructs it, so the overflow of this
            // doubling is deliberately discarded.
            let doubled = proposed.wrapping_add(proposed);
            let (rem2, carry) = rem.overflowing_add(rem);
            let bump = 1 + u64::from(rem2 >= d || carry);
            Self {
                d,
                magic: doubled.wrapping_add(bump),
                shift: floor_log2,
                pow2: false,
                add: true,
            }
        }
    }

    /// `n / d`, exactly.
    #[inline(always)]
    pub(crate) fn div(&self, n: u64) -> u64 {
        if self.pow2 {
            return n >> self.shift;
        }
        let hi = ((n as u128 * self.magic as u128) >> 64) as u64;
        if self.add {
            (((n - hi) >> 1) + hi) >> self.shift
        } else {
            hi >> self.shift
        }
    }

    /// `n % d`, exactly.
    #[inline(always)]
    pub(crate) fn rem(&self, n: u64) -> u64 {
        n - self.div(n) * self.d
    }
}

/// A caller-owned memoization of the bucket containing a virtual clock,
/// used by [`BucketedResource::reserve_with`] to keep the bucket-index
/// division off per-access hot paths. The zero value is an always-stale
/// cursor, so `Default` is a valid starting state for any resource.
#[derive(Clone, Copy, Debug, Default)]
pub struct BucketCursor {
    /// Inclusive start of the memoized bucket, ns.
    start: u64,
    /// Width of the memoized bucket, ns (0 in the default state, so the
    /// in-bucket test `now - start < span` never passes until seeded).
    span: u64,
    /// The memoized bucket's ring slot (`bucket % BUCKETS`).
    slot: usize,
    /// The memoized bucket's generation tag, pre-shifted into the slot
    /// word's epoch field (`(bucket / BUCKETS) << LOAD_BITS`).
    epoch_bits: u64,
}

/// A contended resource (a memory module's bus, the UMA machine's shared
/// bus) with bucketed utilization accounting.
pub struct BucketedResource {
    /// Each slot packs `epoch << 40 | load_ns`. The epoch is the ring
    /// generation (`bucket_index / BUCKETS`), so stale slots from
    /// previous passes around the ring are detected and reset.
    slots: [AtomicU64; BUCKETS],
    bucket_ns: u64,
    /// Magic-constant divider for `now / bucket_ns` (see [`Divider`]).
    bucket_div: Divider,
}

impl BucketedResource {
    /// Creates the resource with the given bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_ns` is zero.
    pub fn new(bucket_ns: u64) -> Self {
        assert!(bucket_ns > 0, "bucket width must be nonzero");
        Self {
            slots: std::array::from_fn(|_| AtomicU64::new(0)),
            bucket_ns,
            bucket_div: Divider::new(bucket_ns),
        }
    }

    /// The virtual-time position of `now` within its bucket
    /// (`now % bucket_ns`), via the precomputed magic.
    #[inline(always)]
    pub fn bucket_into(&self, now: u64) -> u64 {
        self.bucket_div.rem(now)
    }

    /// Reserves `service_ns` of the resource at virtual time `now`;
    /// returns the queueing delay the requester suffers.
    pub fn reserve(&self, now: u64, service_ns: u64) -> u64 {
        self.reserve_bucket(self.bucket_div.div(now), service_ns)
    }

    /// [`BucketedResource::reserve`] with the bucket index already in
    /// hand, for callers walking consecutive buckets.
    fn reserve_bucket(&self, bucket: u64, service_ns: u64) -> u64 {
        debug_assert!(service_ns <= LOAD_MASK);
        let slot = (bucket as usize) % BUCKETS;
        let epoch = bucket / BUCKETS as u64;
        let cell = &self.slots[slot];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let cur_epoch = cur >> LOAD_BITS;
            let cur_load = cur & LOAD_MASK;
            let (prior, new_load) = match cur_epoch.cmp(&epoch) {
                // Same generation: queue behind the existing load. A
                // still-empty bucket (including the all-zero initial
                // state) inherits the previous bucket's overflow as
                // backlog so saturation carries.
                std::cmp::Ordering::Equal => {
                    let prior = if cur_load == 0 && bucket > 0 {
                        self.overflow_of(bucket - 1)
                    } else {
                        cur_load
                    };
                    (prior, prior + service_ns)
                }
                // First request of this generation around the ring.
                std::cmp::Ordering::Less => {
                    let carry = self.overflow_of(bucket.wrapping_sub(1));
                    (carry, carry + service_ns)
                }
                // The bucket already belongs to a future generation:
                // this requester is far behind every other clock; its
                // access would long since have completed.
                std::cmp::Ordering::Greater => return 0,
            };
            let new = (epoch << LOAD_BITS) | (new_load.min(LOAD_MASK));
            match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return (prior + service_ns).saturating_sub(self.bucket_ns),
                Err(actual) => cur = actual,
            }
        }
    }

    /// The service overflow (load beyond capacity) of `bucket`, or 0 when
    /// the slot holds another generation.
    fn overflow_of(&self, bucket: u64) -> u64 {
        let slot = (bucket as usize) % BUCKETS;
        let epoch = bucket / BUCKETS as u64;
        let cur = self.slots[slot].load(Ordering::Relaxed);
        if cur >> LOAD_BITS == epoch {
            (cur & LOAD_MASK).saturating_sub(self.bucket_ns)
        } else {
            0
        }
    }

    /// Like [`BucketedResource::reserve`], but with a caller-held cursor
    /// memoizing the current bucket, for per-access hot paths.
    ///
    /// A virtual clock advances by tens to thousands of nanoseconds per
    /// access while a bucket spans 100 us, so the `now / bucket_ns`
    /// division — the most expensive instruction in an uncontended
    /// reservation — is redundant for hundreds of consecutive calls. The
    /// cursor skips it while `now` stays inside the memoized bucket, and
    /// the common in-bucket case (same generation, already-seeded
    /// bucket, no saturation clamp) books its service with a relaxed
    /// load + store — exactly the state transition
    /// [`BucketedResource::reserve`] would make. Every other case
    /// (fresh bucket's backlog inheritance, generation change, clamp)
    /// delegates to `reserve`, so in any deterministic schedule —
    /// however processors interleave on one simulating thread — the
    /// returned delay and the slot contents are identical to `reserve`,
    /// call for call.
    ///
    /// Under *concurrent* simulation the unlocked store can lose a
    /// racing processor's booking (two writes to one slot within the
    /// same few host nanoseconds). That domain is already
    /// schedule-nondeterministic, and the model explicitly tolerates
    /// redistributing intra-bucket load; the loss is bounded by one
    /// `service_ns` per race. All slow-path traffic (faults, kernel
    /// references, block transfers) still books through the exact CAS
    /// in `reserve`.
    #[inline(always)]
    pub fn reserve_with(&self, cursor: &mut BucketCursor, now: u64, service_ns: u64) -> u64 {
        debug_assert!(service_ns <= LOAD_MASK);
        if now.wrapping_sub(cursor.start) < cursor.span {
            let cell = &self.slots[cursor.slot];
            let cur = cell.load(Ordering::Relaxed);
            // A generation mismatch leaves epoch bits set in `load`,
            // pushing it past LOAD_MASK and into the fallback.
            let load = cur ^ cursor.epoch_bits;
            if load != 0 && load <= LOAD_MASK - service_ns {
                cell.store(cur + service_ns, Ordering::Relaxed);
                return (load + service_ns).saturating_sub(self.bucket_ns);
            }
            return self.reserve(now, service_ns);
        }
        let bucket = self.bucket_div.div(now);
        *cursor = BucketCursor {
            start: bucket * self.bucket_ns,
            span: self.bucket_ns,
            slot: (bucket as usize) % BUCKETS,
            epoch_bits: (bucket / BUCKETS as u64) << LOAD_BITS,
        };
        self.reserve(now, service_ns)
    }

    /// Reserves a long occupancy (e.g. a block transfer's bus time)
    /// starting at `now`, spreading it over as many buckets as it spans.
    /// Returns the queueing delay before the occupancy can begin.
    pub fn reserve_span(&self, now: u64, occupancy_ns: u64) -> u64 {
        // The delay is what the *first* bucket imposes; the rest of the
        // occupancy is booked into the following buckets so that later
        // traffic queues behind it. The walk is by bucket index — a
        // page-sized transfer spans several buckets and the division
        // per step would otherwise dominate the booking.
        let mut bucket = self.bucket_div.div(now);
        let delay = self.reserve_bucket(bucket, occupancy_ns.min(self.bucket_ns));
        let mut remaining = occupancy_ns.saturating_sub(self.bucket_ns);
        while remaining > 0 {
            bucket += 1;
            let chunk = remaining.min(self.bucket_ns);
            let _ = self.reserve_bucket(bucket, chunk);
            remaining -= chunk;
        }
        delay
    }

    /// The load currently booked in the bucket containing `now`
    /// (diagnostics and tests).
    pub fn load_at(&self, now: u64) -> u64 {
        let bucket = self.bucket_div.div(now);
        let slot = (bucket as usize) % BUCKETS;
        let epoch = bucket / BUCKETS as u64;
        let cur = self.slots[slot].load(Ordering::Relaxed);
        if cur >> LOAD_BITS == epoch {
            cur & LOAD_MASK
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divider_matches_hardware_division() {
        // Every divisor class (1, powers of two, round-down magics,
        // round-up/add-indicator magics, huge divisors) against numerators
        // spanning the full u64 range. Any mismatch anywhere would skew
        // every virtual-time delay downstream, so this is exhaustive-ish
        // by construction: divisors near powers of two on both sides are
        // exactly where the magic selection changes branch.
        let mut divisors = vec![1u64, 2, 3, 5, 7, 10, 100_000, u64::MAX, u64::MAX - 1];
        for k in [1u32, 2, 7, 31, 32, 33, 40, 62, 63] {
            let p = 1u64 << k;
            divisors.extend([p, p - 1, p + 1]);
        }
        let mut numerators = vec![0u64, 1, 2, 3, u64::MAX, u64::MAX - 1];
        for k in [1u32, 5, 17, 32, 40, 52, 63] {
            let p = 1u64 << k;
            numerators.extend([p - 1, p, p + 1]);
        }
        // A deterministic xorshift walk fills in arbitrary patterns.
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..4000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            numerators.push(x);
        }
        for &d in &divisors {
            let div = Divider::new(d);
            for &n in &numerators {
                assert_eq!(div.div(n), n / d, "{n} / {d}");
                assert_eq!(div.rem(n), n % d, "{n} % {d}");
            }
        }
    }

    #[test]
    fn uncontended_stream_sees_no_delay() {
        let r = BucketedResource::new(100_000);
        let mut t = 0u64;
        for _ in 0..100 {
            let d = r.reserve(t, 600);
            assert_eq!(d, 0, "self-paced stream must not self-queue");
            t += 5000; // latency outpaces service
        }
    }

    #[test]
    fn below_saturation_is_free_beyond_it_queues() {
        let r = BucketedResource::new(1000);
        // The bucket absorbs its own width of service for free...
        assert_eq!(r.reserve(0, 600), 0);
        assert_eq!(r.reserve(0, 400), 0);
        // ...after which every nanosecond of service queues.
        assert_eq!(r.reserve(0, 600), 600);
        assert_eq!(r.reserve(0, 600), 1200);
        assert_eq!(r.load_at(0), 2200);
    }

    #[test]
    fn backlog_carries_across_buckets() {
        let r = BucketedResource::new(1000);
        // Overload bucket 0 with 5000 ns of work.
        for _ in 0..5 {
            let _ = r.reserve(0, 1000);
        }
        // The first request of bucket 1 inherits 4000 ns of backlog.
        let d = r.reserve(1000, 100);
        assert_eq!(d, 3100); // 4000 backlog + 100 service - 1000 capacity
                             // And bucket 2 inherits what bucket 1 could not serve.
        let d = r.reserve(2000, 100);
        assert!(d > 2000, "saturation must accumulate: {d}");
    }

    #[test]
    fn saturating_bucket_builds_queue() {
        let r = BucketedResource::new(100_000);
        let mut total = 0u64;
        for _ in 0..300 {
            total += r.reserve(50_000, 600);
        }
        // 300 x 600 ns = 180 us demanded of a 100 us bucket: the 80 us
        // of overflow must be charged, amplified by each later arrival
        // queueing behind the whole excess.
        assert!(
            total > 3_000_000,
            "sustained overload must queue heavily: {total}"
        );
    }

    #[test]
    fn scheduling_order_does_not_hide_overload() {
        // Two actors each book 70% of a bucket's capacity, one entirely
        // before the other (coarse host timeslicing): the second must
        // still pay for the aggregate overload.
        let r = BucketedResource::new(100_000);
        let mut delayed = 0u64;
        for i in 0..100 {
            delayed += r.reserve(i * 1000, 700); // actor A walks the bucket
        }
        for i in 0..100 {
            delayed += r.reserve(i * 1000, 700); // actor B follows
        }
        assert!(delayed > 30_000, "40% overload must surface: {delayed}");
    }

    #[test]
    fn future_reservations_do_not_penalize_the_past() {
        let r = BucketedResource::new(100_000);
        // A fast clock reserves work at t = 2 ms.
        for _ in 0..50 {
            let _ = r.reserve(2_000_000, 600);
        }
        // A slow clock at t = 0 is unaffected (different bucket).
        assert_eq!(r.reserve(0, 600), 0);
    }

    #[test]
    fn stale_epochs_reset() {
        let r = BucketedResource::new(100);
        let _ = r.reserve(0, 90);
        assert_eq!(r.load_at(0), 90);
        // Same slot, one full ring later: stale load is discarded.
        let ring = 100 * BUCKETS as u64;
        assert_eq!(r.reserve(ring, 50), 0);
        assert_eq!(r.load_at(ring), 50);
    }

    #[test]
    fn span_reservation_blocks_following_traffic() {
        let r = BucketedResource::new(100_000);
        // A block transfer occupies 864 us starting at t=0.
        let d = r.reserve_span(0, 864_000);
        assert_eq!(d, 0);
        // Traffic shortly after queues behind the occupancy (the span
        // fills its buckets to capacity).
        let d2 = r.reserve(150_000, 600);
        assert!(d2 > 0, "must queue behind the block transfer: {d2}");
        // Traffic after the occupancy ends is free.
        let d3 = r.reserve(1_000_000, 600);
        assert_eq!(d3, 0);
    }

    #[test]
    fn reserve_with_matches_reserve_call_for_call() {
        // Every regime in one stream: in-bucket hits, bucket and epoch
        // transitions, fresh-bucket backlog inheritance, overload, a
        // non-monotonic clock (vtime can step backwards across kernel
        // entries), and a far-future jump. The cursor path must agree
        // with the reference path on every delay and on the final loads.
        let with = BucketedResource::new(1000);
        let without = BucketedResource::new(1000);
        let mut cursor = BucketCursor::default();
        let ring = 1000 * BUCKETS as u64;
        let schedule: Vec<(u64, u64)> = std::iter::empty()
            .chain((0..50).map(|i| (i * 37, 90))) // overload bucket 0
            .chain((0..200).map(|i| (i * 40, 60))) // walk several buckets
            .chain([(500, 80), (20, 40), (7000, 100)]) // jump back, then ahead
            .chain((0..30).map(|i| (ring * 3 + i * 300, 70))) // epoch jump
            .chain([(0, 50), (ring * 3 + 100, 50)]) // laggard, then return
            .collect();
        for &(now, service) in &schedule {
            assert_eq!(
                with.reserve_with(&mut cursor, now, service),
                without.reserve(now, service),
                "delay diverged at now={now} service={service}"
            );
        }
        for &(now, _) in &schedule {
            assert_eq!(
                with.load_at(now),
                without.load_at(now),
                "load diverged at {now}"
            );
        }
    }

    #[test]
    fn cursor_survives_saturation_clamp() {
        // Drive a bucket's load to the LOAD_MASK clamp; the cursor path
        // must keep matching the reference (it falls back rather than
        // blindly adding into the clamped value).
        let with = BucketedResource::new(10);
        let without = BucketedResource::new(10);
        let mut cursor = BucketCursor::default();
        let big = LOAD_MASK / 4;
        for _ in 0..8 {
            assert_eq!(
                with.reserve_with(&mut cursor, 5, big),
                without.reserve(5, big)
            );
        }
        assert_eq!(with.load_at(5), LOAD_MASK);
        assert_eq!(without.load_at(5), LOAD_MASK);
    }

    #[test]
    fn laggard_is_not_charged() {
        let r = BucketedResource::new(100);
        let ring = 100 * BUCKETS as u64;
        // Someone reserves far in the future (same slot, later epoch).
        let _ = r.reserve(ring * 5, 90);
        // A very late clock hitting that slot pays nothing.
        assert_eq!(r.reserve(0, 60), 0);
    }
}
