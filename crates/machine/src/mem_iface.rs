//! The portable memory interface that applications program against.

use crate::addr::Va;

/// The memory interface of one simulated processor, as seen by an
/// application thread.
///
/// Applications in this repository (Gaussian elimination, merge sort, the
/// neural-network simulator, the synthetic workloads) are written against
/// this trait so that the *same* application code runs on:
///
/// * the PLATINUM kernel's coherent memory (`platinum::UserCtx`) — the
///   paper's system,
/// * the same kernel under baseline replication policies (static
///   placement ≈ the Uniform System comparator, ACE-style, ...), and
/// * the UMA comparator machine with small write-through caches
///   ([`crate::uma::UmaCtx`]) — the Sequent Symmetry of Figure 5.
///
/// All data accesses are 32-bit-word granular, matching the Butterfly
/// Plus (§4.1 of the paper: the typical unit of access is a 32-bit word).
///
/// # Panics
///
/// The data-access methods panic on misaligned addresses and on
/// unrecoverable access violations (no mapping, insufficient rights at
/// the *virtual-memory* level). Those correspond to a program crashing
/// with a bus error on the real machine: an application bug, not a
/// recoverable condition. Kernel-internal fault handling (the coherency
/// protocol) is invisible here — that is the whole point of the coherent
/// memory abstraction.
pub trait Mem {
    /// The simulated processor this context is bound to.
    fn proc_id(&self) -> usize;

    /// The number of processors on the machine.
    fn nprocs(&self) -> usize;

    /// The processor's current virtual time, in nanoseconds.
    fn vtime(&self) -> u64;

    /// Moves the clock forward to at least `t` (used by synchronization
    /// primitives to propagate release times to acquirers).
    fn advance_to(&mut self, t: u64);

    /// Overwrites the clock; reserved for synchronization primitives that
    /// model waiting analytically rather than charging spin iterations.
    fn set_vtime(&mut self, t: u64);

    /// Charges `ns` nanoseconds of computation (non-memory work).
    fn compute(&mut self, ns: u64);

    /// Reads the 32-bit word at `va`.
    fn read(&mut self, va: Va) -> u32;

    /// Writes the 32-bit word at `va`.
    fn write(&mut self, va: Va, val: u32);

    /// Reads the word at `va` *without charging access latency*.
    ///
    /// Spin-wait loops use this: the waiting time is modelled analytically
    /// by the synchronization primitive (via [`Mem::advance_to`]), but the
    /// accesses still exercise the coherency protocol — repeatedly
    /// touching a page from many processors is exactly what freezes it
    /// (§4.2's spin-lock anecdote). Protocol work triggered by a fault is
    /// still charged.
    fn read_spin(&mut self, va: Va) -> u32;

    /// Atomic fetch-and-add on the word at `va`, returning the previous
    /// value (the Butterfly's atomic remote 32-bit operations).
    fn fetch_add(&mut self, va: Va, delta: u32) -> u32;

    /// Atomic compare-and-exchange on the word at `va`.
    ///
    /// Returns `Ok(previous)` on success, `Err(actual)` on failure.
    fn compare_exchange(&mut self, va: Va, current: u32, new: u32) -> Result<u32, u32>;

    /// Atomic swap of the word at `va`, returning the previous value.
    fn swap(&mut self, va: Va, val: u32) -> u32;

    /// Gives the kernel an opportunity to service pending interprocessor
    /// interrupts without performing a data access. Long compute-only
    /// stretches should call this periodically.
    fn poll(&mut self) {}

    /// Declares that the processor is entering a spin-wait loop.
    ///
    /// Synchronization primitives bracket their wait loops with
    /// `begin_wait`/`end_wait`: while waiting, the processor's clock is
    /// frozen (spin reads are uncharged), so implementations with a skew
    /// window exclude it from the window's minimum. Default: no-op.
    fn begin_wait(&mut self) {}

    /// Declares that the spin-wait loop exited.
    fn end_wait(&mut self) {}

    /// Instrumentation hook: a synchronization primitive acquired
    /// (`acquire == true`) or is about to release (`acquire == false`)
    /// the lock whose state word is at `va`. Default: no-op.
    ///
    /// Implementations backed by a traced machine record the event on
    /// the protocol timeline — lock hold intervals are how the §4.2
    /// frozen-spin-lock anecdote is diagnosed.
    fn trace_lock(&mut self, va: Va, acquire: bool) {
        let _ = (va, acquire);
    }

    /// Reads `dst.len()` consecutive words starting at `va`.
    ///
    /// The default implementation is word-at-a-time; implementations may
    /// batch translation per page.
    fn read_block(&mut self, va: Va, dst: &mut [u32]) {
        for (i, w) in dst.iter_mut().enumerate() {
            *w = self.read(va + 4 * i as u64);
        }
    }

    /// Writes `src.len()` consecutive words starting at `va`.
    fn write_block(&mut self, va: Va, src: &[u32]) {
        for (i, &w) in src.iter().enumerate() {
            self.write(va + 4 * i as u64, w);
        }
    }

    /// Convenience: reads the word at `va` as an `i32`.
    fn read_i32(&mut self, va: Va) -> i32 {
        self.read(va) as i32
    }

    /// Convenience: writes an `i32` to the word at `va`.
    fn write_i32(&mut self, va: Va, val: i32) {
        self.write(va, val as u32);
    }

    /// Convenience: reads the word at `va` as an `f32` (bit cast).
    fn read_f32(&mut self, va: Va) -> f32 {
        f32::from_bits(self.read(va))
    }

    /// Convenience: writes an `f32` to the word at `va` (bit cast).
    fn write_f32(&mut self, va: Va, val: f32) {
        self.write(va, val.to_bits());
    }
}

/// Test support: a trivial flat-memory [`Mem`] with simple fixed costs,
/// used by this crate's tests and by downstream crates to unit-test
/// `Mem`-generic code without booting a machine.
pub mod test_support {
    use super::*;
    use std::collections::HashMap;

    /// A trivial flat-memory `Mem` for testing default methods and
    /// `Mem`-generic primitives without a machine.
    pub struct FlatMem {
        /// Backing words (sparse).
        pub words: HashMap<Va, u32>,
        /// Current virtual time, ns.
        pub vtime: u64,
        /// Reported processor id.
        pub id: usize,
        /// Reported processor count.
        pub n: usize,
    }

    impl FlatMem {
        /// A fresh, zeroed flat memory for processor `id` of `n`.
        pub fn new(id: usize, n: usize) -> Self {
            Self {
                words: HashMap::new(),
                vtime: 0,
                id,
                n,
            }
        }
    }

    impl Mem for FlatMem {
        fn proc_id(&self) -> usize {
            self.id
        }
        fn nprocs(&self) -> usize {
            self.n
        }
        fn vtime(&self) -> u64 {
            self.vtime
        }
        fn advance_to(&mut self, t: u64) {
            self.vtime = self.vtime.max(t);
        }
        fn set_vtime(&mut self, t: u64) {
            self.vtime = t;
        }
        fn compute(&mut self, ns: u64) {
            self.vtime += ns;
        }
        fn read(&mut self, va: Va) -> u32 {
            assert_eq!(va % 4, 0, "misaligned");
            self.vtime += 320;
            *self.words.get(&va).unwrap_or(&0)
        }
        fn write(&mut self, va: Va, val: u32) {
            assert_eq!(va % 4, 0, "misaligned");
            self.vtime += 320;
            self.words.insert(va, val);
        }
        fn read_spin(&mut self, va: Va) -> u32 {
            *self.words.get(&va).unwrap_or(&0)
        }
        fn fetch_add(&mut self, va: Va, delta: u32) -> u32 {
            let old = *self.words.get(&va).unwrap_or(&0);
            self.words.insert(va, old.wrapping_add(delta));
            self.vtime += 640;
            old
        }
        fn compare_exchange(&mut self, va: Va, current: u32, new: u32) -> Result<u32, u32> {
            let old = *self.words.get(&va).unwrap_or(&0);
            self.vtime += 640;
            if old == current {
                self.words.insert(va, new);
                Ok(old)
            } else {
                Err(old)
            }
        }
        fn swap(&mut self, va: Va, val: u32) -> u32 {
            let old = *self.words.get(&va).unwrap_or(&0);
            self.words.insert(va, val);
            self.vtime += 640;
            old
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::FlatMem;
    use super::*;

    #[test]
    fn block_defaults() {
        let mut m = FlatMem::new(0, 1);
        m.write_block(0x100, &[1, 2, 3]);
        let mut out = [0u32; 3];
        m.read_block(0x100, &mut out);
        assert_eq!(out, [1, 2, 3]);
    }

    #[test]
    fn typed_helpers() {
        let mut m = FlatMem::new(0, 1);
        m.write_i32(0, -5);
        assert_eq!(m.read_i32(0), -5);
        m.write_f32(4, 2.5);
        assert_eq!(m.read_f32(4), 2.5);
    }

    #[test]
    fn atomics_on_flat() {
        let mut m = FlatMem::new(0, 1);
        assert_eq!(m.fetch_add(0, 3), 0);
        assert_eq!(m.compare_exchange(0, 3, 9), Ok(3));
        assert_eq!(m.compare_exchange(0, 3, 7), Err(9));
        assert_eq!(m.swap(0, 1), 9);
    }
}
