//! Machine and timing configuration.

use crate::topology::Topology;

/// Latency and occupancy parameters of the simulated machine.
///
/// Defaults are the figures the paper publishes for the 16-processor BBN
/// Butterfly Plus (§4, §4.1): a local 32-bit reference costs about 320 ns,
/// a remote read about 5000 ns ("write operations are faster"), and the
/// block-transfer engine moves one word in about 1100 ns while consuming
/// 75% of the local memory bus bandwidth on both nodes involved (§7).
#[derive(Clone, Debug)]
pub struct TimingConfig {
    /// Latency of a local 32-bit read, in nanoseconds.
    pub local_read_ns: u64,
    /// Latency of a local 32-bit write, in nanoseconds.
    pub local_write_ns: u64,
    /// Latency of a remote 32-bit read through the switch, in nanoseconds.
    pub remote_read_ns: u64,
    /// Latency of a remote 32-bit write, in nanoseconds. The paper notes
    /// writes are faster than the 5000 ns remote read because the requester
    /// need not wait for the reply data.
    pub remote_write_ns: u64,
    /// Latency of a local atomic read-modify-write.
    pub local_atomic_ns: u64,
    /// Latency of a remote atomic read-modify-write (the Butterfly's
    /// remote atomic 32-bit operations).
    pub remote_atomic_ns: u64,
    /// Time for the block-transfer engine to move one 32-bit word.
    pub block_word_ns: u64,
    /// Percentage (0-100) of each involved node's memory-bus bandwidth
    /// consumed by a block transfer (§7: 75% on both nodes).
    pub block_bus_fraction_pct: u64,
    /// Memory-module occupancy per local access (service time for the
    /// contention model).
    pub module_service_local_ns: u64,
    /// Memory-module occupancy per remote access.
    pub module_service_remote_ns: u64,
    /// Cost to deliver an interprocessor interrupt to one target and have
    /// it run the Cmap synchronization handler. The paper deduces roughly
    /// 7 us per interrupted processor (§4).
    pub ipi_ns: u64,
}

impl Default for TimingConfig {
    fn default() -> Self {
        Self {
            local_read_ns: 320,
            local_write_ns: 320,
            remote_read_ns: 5000,
            remote_write_ns: 2500,
            local_atomic_ns: 640,
            remote_atomic_ns: 6000,
            block_word_ns: 1100,
            block_bus_fraction_pct: 75,
            module_service_local_ns: 320,
            module_service_remote_ns: 600,
            ipi_ns: 7000,
        }
    }
}

impl TimingConfig {
    /// Latency of one word access of the given locality and kind.
    pub fn word_latency(&self, local: bool, kind: crate::proc::AccessKind) -> u64 {
        use crate::proc::AccessKind;
        match (local, kind) {
            (true, AccessKind::Read) => self.local_read_ns,
            (true, AccessKind::Write) => self.local_write_ns,
            (true, AccessKind::Atomic) => self.local_atomic_ns,
            (false, AccessKind::Read) => self.remote_read_ns,
            (false, AccessKind::Write) => self.remote_write_ns,
            (false, AccessKind::Atomic) => self.remote_atomic_ns,
        }
    }

    /// Memory-module occupancy of one access of the given locality.
    pub fn service_time(&self, local: bool) -> u64 {
        if local {
            self.module_service_local_ns
        } else {
            self.module_service_remote_ns
        }
    }
}

/// Configuration of the simulated machine.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Number of nodes; each node has one processor and one memory module,
    /// as on the Butterfly Plus.
    pub nodes: usize,
    /// Number of page frames per memory module. The Butterfly Plus node
    /// had 4 MB; with 4 KB pages that is 1024 frames.
    pub frames_per_node: usize,
    /// log2 of the page size in bytes (default 12, i.e. 4 KB, the paper's
    /// default page size).
    pub page_shift: u32,
    /// Number of entries in each processor's address translation cache.
    /// The MC68851's on-chip ATC held 64 entries.
    pub atc_entries: usize,
    /// Latency and occupancy parameters. When `topology` is `None`, these
    /// flat local/remote figures are the whole timing model.
    pub timing: TimingConfig,
    /// Machine description for hierarchical or asymmetric interconnects.
    /// `None` (the default) charges through [`Topology::flat`] built from
    /// `timing`, which is bit-identical to the historical flat model.
    pub topology: Option<Topology>,
    /// If set, conservative virtual-time coupling: a processor whose clock
    /// runs more than this many nanoseconds ahead of the slowest running
    /// processor stalls until the others catch up. Keeps the replication
    /// policy's timestamps meaningful across processors.
    pub skew_window_ns: Option<u64>,
    /// Number of accesses between publications of a processor's virtual
    /// clock (used by the skew window and by observers).
    pub publish_interval: u32,
    /// Width of the contention model's utilization buckets, ns. Should
    /// comfortably exceed typical access latencies and sit well below the
    /// skew window.
    pub contention_bucket_ns: u64,
    /// Whether processors may use the ATC frame-handle fast path: on an
    /// ATC hit with sufficient rights, the access resolves through cached
    /// frame/module pointers instead of walking the machine's tables. The
    /// timing model, counters and traces are identical either way — this
    /// only changes host-side work per simulated access. Disable to force
    /// every access through the reference slow path (used by the
    /// equivalence tests).
    pub fast_path: bool,
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self {
            nodes: 16,
            frames_per_node: 1024,
            page_shift: 12,
            atc_entries: 64,
            timing: TimingConfig::default(),
            topology: None,
            skew_window_ns: Some(2_000_000),
            publish_interval: 64,
            contention_bucket_ns: 100_000,
            fast_path: true,
        }
    }
}

impl MachineConfig {
    /// A machine with the given number of nodes and defaults otherwise.
    pub fn with_nodes(nodes: usize) -> Self {
        Self {
            nodes,
            ..Self::default()
        }
    }

    /// The page size in bytes.
    pub fn page_bytes(&self) -> u64 {
        1u64 << self.page_shift
    }

    /// The page size in 32-bit words.
    pub fn words_per_page(&self) -> usize {
        (self.page_bytes() / 4) as usize
    }

    /// Validates the configuration.
    ///
    /// Returns a description of the first problem found, if any.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 || self.nodes > 4096 {
            return Err(format!("nodes must be 1..=4096, got {}", self.nodes));
        }
        if let Some(topo) = &self.topology {
            topo.validate(self.nodes)?;
        }
        if self.page_shift < 4 || self.page_shift > 20 {
            return Err(format!(
                "page_shift must be 4..=20, got {}",
                self.page_shift
            ));
        }
        if self.frames_per_node == 0 {
            return Err("frames_per_node must be nonzero".to_string());
        }
        if !self.atc_entries.is_power_of_two() {
            return Err(format!(
                "atc_entries must be a power of two, got {}",
                self.atc_entries
            ));
        }
        if self.timing.block_bus_fraction_pct > 100 {
            return Err("block_bus_fraction_pct must be <= 100".to_string());
        }
        if self.contention_bucket_ns == 0 {
            return Err("contention_bucket_ns must be nonzero".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proc::AccessKind;

    #[test]
    fn paper_defaults() {
        let t = TimingConfig::default();
        assert_eq!(t.local_read_ns, 320);
        assert_eq!(t.remote_read_ns, 5000);
        assert_eq!(t.block_word_ns, 1100);
        assert_eq!(t.block_bus_fraction_pct, 75);
        let c = MachineConfig::default();
        assert_eq!(c.page_bytes(), 4096);
        assert_eq!(c.words_per_page(), 1024);
        assert_eq!(c.nodes, 16);
        c.validate().expect("default config must validate");
    }

    #[test]
    fn latency_table() {
        let t = TimingConfig::default();
        assert_eq!(t.word_latency(true, AccessKind::Read), 320);
        assert_eq!(t.word_latency(false, AccessKind::Read), 5000);
        assert_eq!(t.word_latency(false, AccessKind::Write), 2500);
        assert_eq!(t.word_latency(false, AccessKind::Atomic), 6000);
        assert!(t.service_time(true) < t.service_time(false));
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = MachineConfig {
            nodes: 0,
            ..MachineConfig::default()
        };
        assert!(c.validate().is_err());
        c.nodes = 4097;
        assert!(c.validate().is_err());
        c.nodes = 65; // beyond the old u64-mask cap: now a valid machine
        assert!(c.validate().is_ok());
        c.nodes = 16;
        c.atc_entries = 48;
        assert!(c.validate().is_err());
        c.atc_entries = 64;
        c.page_shift = 2;
        assert!(c.validate().is_err());
        c.page_shift = 12;
        c.frames_per_node = 0;
        assert!(c.validate().is_err());
        c.frames_per_node = 8;
        c.timing.block_bus_fraction_pct = 150;
        assert!(c.validate().is_err());
    }

    #[test]
    fn topology_node_count_must_match() {
        let mut c = MachineConfig::with_nodes(16);
        c.topology = Some(Topology::flat(8, &c.timing));
        assert!(c.validate().is_err());
        c.topology = Some(Topology::hier2(16, 2, &c.timing));
        c.validate().expect("matching topology validates");
    }
}
