//! The timing-only tag cache of the UMA comparator.

/// One tag entry of the direct-mapped cache.
#[derive(Clone, Copy, Debug)]
struct TagEntry {
    valid: bool,
    /// The memory line index cached in this slot.
    line: u64,
    /// The global write version of the line when it was filled; a hit
    /// requires the version to still match, which models write-invalidate
    /// snooping by other processors.
    version: u64,
}

/// A direct-mapped, timing-only model of a small private cache.
///
/// Only tags and versions are stored; data always comes from the shared
/// backing store, so the comparator machine cannot return stale values
/// even if the timing model is approximate.
pub struct TagCache {
    entries: Box<[TagEntry]>,
    mask: usize,
    hits: u64,
    misses: u64,
}

impl TagCache {
    /// Creates a cache with `lines` slots.
    ///
    /// # Panics
    ///
    /// Panics unless `lines` is a nonzero power of two.
    pub fn new(lines: usize) -> Self {
        assert!(
            lines.is_power_of_two() && lines > 0,
            "cache lines must be a nonzero power of two"
        );
        Self {
            entries: vec![
                TagEntry {
                    valid: false,
                    line: 0,
                    version: 0
                };
                lines
            ]
            .into_boxed_slice(),
            mask: lines - 1,
            hits: 0,
            misses: 0,
        }
    }

    #[inline]
    fn slot(&self, line: u64) -> usize {
        (line as usize) & self.mask
    }

    /// Probes for `line` at `current_version`; returns whether it hits.
    /// A version mismatch (another processor wrote the line since the
    /// fill) counts as a miss, like a snoop invalidation.
    #[inline]
    pub fn probe(&mut self, line: u64, current_version: u64) -> bool {
        let e = &self.entries[self.slot(line)];
        if e.valid && e.line == line && e.version == current_version {
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Installs `line` at `version` (after a miss fill, or updating the
    /// processor's own copy after its own write-through).
    #[inline]
    pub fn fill(&mut self, line: u64, version: u64) {
        let slot = self.slot(line);
        self.entries[slot] = TagEntry {
            valid: true,
            line,
            version,
        };
    }

    /// Whether `line` is currently resident (regardless of version).
    pub fn resident(&self, line: u64) -> bool {
        let e = &self.entries[self.slot(line)];
        e.valid && e.line == line
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_fill_cycle() {
        let mut c = TagCache::new(8);
        assert!(!c.probe(5, 0));
        c.fill(5, 0);
        assert!(c.probe(5, 0));
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn version_mismatch_misses() {
        let mut c = TagCache::new(8);
        c.fill(5, 0);
        assert!(!c.probe(5, 1), "a remote write must invalidate");
        c.fill(5, 1);
        assert!(c.probe(5, 1));
    }

    #[test]
    fn conflict_eviction() {
        let mut c = TagCache::new(8);
        c.fill(0, 0);
        c.fill(8, 0); // same slot in an 8-line direct-mapped cache
        assert!(!c.probe(0, 0));
        assert!(c.probe(8, 0));
        assert!(c.resident(8));
        assert!(!c.resident(0));
    }
}
