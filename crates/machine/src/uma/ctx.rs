//! The per-processor context of the UMA comparator machine.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::addr::Va;
use crate::mem_iface::Mem;
use crate::stats::AccessCounters;

use super::{TagCache, UmaMachine};

/// One simulated processor of the UMA comparator, implementing [`Mem`].
///
/// Owned by the thread that simulates the processor. Every access goes
/// through the private tag cache and, on misses and writes, the shared
/// bus, accumulating virtual time the same way the NUMA machine does.
pub struct UmaCtx {
    machine: Arc<UmaMachine>,
    id: usize,
    vtime: u64,
    cache: TagCache,
    counters: AccessCounters,
    accesses: u32,
    waiting: bool,
}

impl UmaCtx {
    /// Creates the context for processor `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for the machine.
    pub fn new(machine: Arc<UmaMachine>, id: usize) -> Self {
        assert!(id < machine.cfg().procs, "processor {id} out of range");
        let lines = machine.cfg().cache_bytes / machine.cfg().line_bytes;
        machine.publish(id, 0);
        Self {
            machine,
            id,
            vtime: 0,
            cache: TagCache::new(lines),
            counters: AccessCounters::default(),
            accesses: 0,
            waiting: false,
        }
    }

    /// Clock-coupling bookkeeping, run on every access: publish the
    /// clock periodically and respect the skew window (as the NUMA
    /// machine's processors do).
    #[inline]
    fn tick(&mut self) {
        self.accesses += 1;
        if self.accesses < 64 {
            return;
        }
        self.accesses = 0;
        let Some(window) = self.machine.cfg().skew_window_ns else {
            return;
        };
        if self.waiting {
            self.machine.publish(self.id, u64::MAX);
            return;
        }
        self.machine.publish(self.id, self.vtime);
        loop {
            let min = self.machine.min_running_vtime();
            if min == u64::MAX || self.vtime <= min.saturating_add(window) {
                break;
            }
            std::thread::yield_now();
        }
    }

    /// The machine this processor belongs to.
    pub fn machine(&self) -> &Arc<UmaMachine> {
        &self.machine
    }

    /// Counters accumulated so far. The "local"/"remote" split reports
    /// cache hits as local references and misses/write-throughs as remote
    /// (bus) references.
    pub fn counters(&self) -> AccessCounters {
        let mut c = self.counters.clone();
        let (h, m) = self.cache.stats();
        c.atc_hits = h;
        c.atc_misses = m;
        c
    }

    #[inline]
    fn word_index(&self, va: Va) -> usize {
        assert_eq!(va % 4, 0, "misaligned access at {va:#x}");
        let idx = (va / 4) as usize;
        assert!(
            idx < self.machine.cfg().mem_words,
            "bus error: access at {va:#x} beyond physical memory"
        );
        idx
    }

    #[inline]
    fn line_of(&self, word_idx: usize) -> u64 {
        (word_idx / self.machine.cfg().words_per_line()) as u64
    }

    fn read_impl(&mut self, va: Va, charge: bool) -> u32 {
        if charge {
            self.tick();
        }
        let idx = self.word_index(va);
        let line = self.line_of(idx);
        let version = self.machine.line_version(idx);
        let t = self.machine.cfg().timing.clone();
        if self.cache.probe(line, version) {
            if charge {
                self.vtime += t.hit_ns;
                self.counters.local_reads += 1;
            }
        } else {
            // Miss: a bus transaction fetches the line.
            let start = self.machine.bus_reserve(self.vtime, t.bus_line_service_ns);
            if charge {
                self.counters.queue_delay_ns += start - self.vtime;
                self.vtime = start + t.miss_ns;
                self.counters.remote_reads += 1;
            }
            self.cache.fill(line, version);
        }
        self.machine.word(idx).load(Ordering::Acquire)
    }
}

impl Mem for UmaCtx {
    fn proc_id(&self) -> usize {
        self.id
    }

    fn nprocs(&self) -> usize {
        self.machine.cfg().procs
    }

    fn vtime(&self) -> u64 {
        self.vtime
    }

    fn advance_to(&mut self, t: u64) {
        if t > self.vtime {
            self.vtime = t;
        }
    }

    fn set_vtime(&mut self, t: u64) {
        self.vtime = t;
    }

    fn compute(&mut self, ns: u64) {
        self.vtime += ns;
        self.counters.compute_ns += ns;
    }

    fn begin_wait(&mut self) {
        self.waiting = true;
        self.machine.publish(self.id, u64::MAX);
    }

    fn end_wait(&mut self) {
        self.waiting = false;
        self.machine.publish(self.id, self.vtime);
    }

    fn read(&mut self, va: Va) -> u32 {
        self.read_impl(va, true)
    }

    fn read_spin(&mut self, va: Va) -> u32 {
        self.read_impl(va, false)
    }

    fn write(&mut self, va: Va, val: u32) {
        self.tick();
        let idx = self.word_index(va);
        let line = self.line_of(idx);
        let t = self.machine.cfg().timing.clone();
        // Write-through: the word goes over the bus to memory; other
        // caches are invalidated by the version bump.
        self.machine.word(idx).store(val, Ordering::Release);
        let version = self.machine.bump_line_version(idx);
        if self.cache.resident(line) {
            self.cache.fill(line, version);
        }
        let start = self.machine.bus_reserve(self.vtime, t.bus_word_service_ns);
        self.counters.queue_delay_ns += start - self.vtime;
        self.vtime = start + t.write_ns;
        self.counters.remote_writes += 1;
    }

    fn fetch_add(&mut self, va: Va, delta: u32) -> u32 {
        self.tick();
        let idx = self.word_index(va);
        let t = self.machine.cfg().timing.clone();
        let start = self.machine.bus_reserve(self.vtime, t.atomic_ns);
        self.counters.queue_delay_ns += start - self.vtime;
        self.vtime = start + t.atomic_ns;
        self.counters.remote_atomics += 1;
        let old = self.machine.word(idx).fetch_add(delta, Ordering::AcqRel);
        self.machine.bump_line_version(idx);
        old
    }

    fn compare_exchange(&mut self, va: Va, current: u32, new: u32) -> Result<u32, u32> {
        self.tick();
        let idx = self.word_index(va);
        let t = self.machine.cfg().timing.clone();
        let start = self.machine.bus_reserve(self.vtime, t.atomic_ns);
        self.counters.queue_delay_ns += start - self.vtime;
        self.vtime = start + t.atomic_ns;
        self.counters.remote_atomics += 1;
        let r = self.machine.word(idx).compare_exchange(
            current,
            new,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
        if r.is_ok() {
            self.machine.bump_line_version(idx);
        }
        r
    }

    fn swap(&mut self, va: Va, val: u32) -> u32 {
        self.tick();
        let idx = self.word_index(va);
        let t = self.machine.cfg().timing.clone();
        let start = self.machine.bus_reserve(self.vtime, t.atomic_ns);
        self.counters.queue_delay_ns += start - self.vtime;
        self.vtime = start + t.atomic_ns;
        self.counters.remote_atomics += 1;
        let old = self.machine.word(idx).swap(val, Ordering::AcqRel);
        self.machine.bump_line_version(idx);
        old
    }

    fn read_block(&mut self, va: Va, dst: &mut [u32]) {
        if dst.is_empty() {
            return;
        }
        self.tick();
        let idx = self.word_index(va);
        let _ = self.word_index(va + 4 * (dst.len() as u64 - 1));
        let t = self.machine.cfg().timing.clone();
        let wpl = self.machine.cfg().words_per_line();
        let lines = (idx % wpl + dst.len()).div_ceil(wpl) as u64;
        // A burst transfer arbitrates for the bus once and streams the
        // lines, instead of paying one bus transaction per word as the
        // word-at-a-time default would.
        let start = self
            .machine
            .bus_reserve(self.vtime, lines * t.bus_line_service_ns);
        self.counters.queue_delay_ns += start - self.vtime;
        self.vtime = start + lines * t.miss_ns;
        self.counters.remote_reads += dst.len() as u64;
        for (i, w) in dst.iter_mut().enumerate() {
            *w = self.machine.word(idx + i).load(Ordering::Acquire);
        }
        // The stream leaves its lines resident, as per-word reads would.
        let mut line_start = idx - idx % wpl;
        while line_start < idx + dst.len() {
            let version = self.machine.line_version(line_start);
            self.cache.fill(self.line_of(line_start), version);
            line_start += wpl;
        }
    }

    fn write_block(&mut self, va: Va, src: &[u32]) {
        if src.is_empty() {
            return;
        }
        self.tick();
        let idx = self.word_index(va);
        let _ = self.word_index(va + 4 * (src.len() as u64 - 1));
        let t = self.machine.cfg().timing.clone();
        let wpl = self.machine.cfg().words_per_line();
        let lines = (idx % wpl + src.len()).div_ceil(wpl) as u64;
        for (i, &w) in src.iter().enumerate() {
            self.machine.word(idx + i).store(w, Ordering::Release);
        }
        // One version bump per touched line invalidates every other
        // cache's copy; our own copy is refreshed below.
        let mut line_start = idx - idx % wpl;
        while line_start < idx + src.len() {
            let version = self.machine.bump_line_version(line_start);
            let line = self.line_of(line_start);
            if self.cache.resident(line) {
                self.cache.fill(line, version);
            }
            line_start += wpl;
        }
        let start = self
            .machine
            .bus_reserve(self.vtime, src.len() as u64 * t.bus_word_service_ns);
        self.counters.queue_delay_ns += start - self.vtime;
        self.vtime = start + lines * t.write_ns;
        self.counters.remote_writes += src.len() as u64;
    }
}

impl Drop for UmaCtx {
    fn drop(&mut self) {
        // A finished processor must not hold the skew window's minimum.
        self.machine.publish(self.id, u64::MAX);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uma::UmaConfig;

    fn ctx() -> UmaCtx {
        let m = UmaMachine::new(UmaConfig {
            procs: 2,
            mem_words: 4096,
            ..UmaConfig::default()
        })
        .unwrap();
        UmaCtx::new(m, 0)
    }

    #[test]
    fn read_miss_then_hit() {
        let mut c = ctx();
        c.write(0, 7);
        let t0 = c.vtime();
        assert_eq!(c.read(0), 7); // first read of the line: miss
        let t1 = c.vtime();
        assert_eq!(c.read(0), 7); // second: hit
        let t2 = c.vtime();
        assert!(t1 - t0 > t2 - t1, "miss must cost more than hit");
        assert_eq!(t2 - t1, 150);
    }

    #[test]
    fn own_write_keeps_line_hot() {
        let mut c = ctx();
        let _ = c.read(0); // fill the line
        c.write(0, 3); // own write-through updates own copy
        let before = c.vtime();
        assert_eq!(c.read(0), 3);
        assert_eq!(c.vtime() - before, 150, "still a hit after own write");
    }

    #[test]
    fn remote_write_invalidates() {
        let m = UmaMachine::new(UmaConfig {
            procs: 2,
            mem_words: 4096,
            ..UmaConfig::default()
        })
        .unwrap();
        let mut a = UmaCtx::new(Arc::clone(&m), 0);
        let mut b = UmaCtx::new(Arc::clone(&m), 1);
        let _ = a.read(0);
        b.write(0, 42);
        let before = a.vtime();
        assert_eq!(a.read(0), 42, "must observe the remote write");
        assert!(
            a.vtime() - before > 150,
            "snooped-out line must miss, not hit"
        );
    }

    #[test]
    fn atomics_are_coherent() {
        let m = UmaMachine::new(UmaConfig {
            procs: 2,
            mem_words: 4096,
            ..UmaConfig::default()
        })
        .unwrap();
        let mut a = UmaCtx::new(Arc::clone(&m), 0);
        let mut b = UmaCtx::new(Arc::clone(&m), 1);
        assert_eq!(a.fetch_add(0, 1), 0);
        assert_eq!(b.fetch_add(0, 1), 1);
        assert_eq!(a.read(0), 2);
        assert_eq!(b.compare_exchange(0, 2, 5), Ok(2));
        assert_eq!(a.swap(0, 9), 5);
    }

    #[test]
    fn block_transfer_charges_bus_once() {
        let mut c = ctx();
        let data: Vec<u32> = (0..64).map(|i| i * 3 + 1).collect();
        let t0 = c.vtime();
        c.write_block(0, &data);
        let write_cost = c.vtime() - t0;
        let t = c.machine().cfg().timing.clone();
        assert!(
            write_cost < 64 * t.write_ns,
            "burst write must beat 64 write-throughs: {write_cost}"
        );
        let mut out = vec![0u32; 64];
        let t1 = c.vtime();
        c.read_block(0, &mut out);
        assert_eq!(out, data);
        assert!(
            c.vtime() - t1 < 64 * t.miss_ns,
            "burst read must beat 64 line misses"
        );
        // The stream leaves its lines resident: the next read is a hit.
        let before = c.vtime();
        let _ = c.read(0);
        assert_eq!(c.vtime() - before, t.hit_ns);
    }

    #[test]
    fn block_write_invalidates_other_caches() {
        let m = UmaMachine::new(UmaConfig {
            procs: 2,
            mem_words: 4096,
            ..UmaConfig::default()
        })
        .unwrap();
        let mut a = UmaCtx::new(Arc::clone(&m), 0);
        let mut b = UmaCtx::new(Arc::clone(&m), 1);
        let _ = b.read(0);
        a.write_block(0, &[11, 22, 33]);
        assert_eq!(b.read(0), 11, "must observe the block write");
        let mut out = [0u32; 2];
        b.read_block(4, &mut out);
        assert_eq!(out, [22, 33]);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_panics() {
        let mut c = ctx();
        let _ = c.read(2);
    }

    #[test]
    #[should_panic(expected = "bus error")]
    fn out_of_range_panics() {
        let mut c = ctx();
        let _ = c.read(4096 * 4);
    }
}
