//! A UMA comparator machine in the style of the Sequent Symmetry.
//!
//! Figure 5 of the paper compares merge sort on PLATINUM/Butterfly Plus
//! against the same program on a Sequent Symmetry (model A processors with
//! 8 KB write-through caches). We cannot run on a Symmetry either, so this
//! module provides the closest synthetic equivalent: a bus-based UMA
//! multiprocessor with small private write-through caches, a shared bus
//! with contention accounting, and uniform memory latency.
//!
//! The cache model is *timing-only*: tags and per-line versions determine
//! hits and misses (with write-invalidate snooping approximated through
//! the version check), while data is always read from the shared backing
//! store, so the comparator cannot produce incorrect application results.

mod cache;
mod ctx;

pub use cache::TagCache;
pub use ctx::UmaCtx;

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use crate::addr::Va;
use crate::contention::BucketedResource;

/// Timing parameters of the UMA comparator.
///
/// Defaults approximate a Sequent Symmetry model A: a cache hit is fast, a
/// miss is a full bus transaction fetching a 16-byte line, and every write
/// goes through to memory over the bus (write-through).
#[derive(Clone, Debug)]
pub struct UmaTiming {
    /// Latency of a cache hit.
    pub hit_ns: u64,
    /// Latency of a read miss (line fetch), excluding bus queueing.
    pub miss_ns: u64,
    /// Bus occupancy of a line fetch.
    pub bus_line_service_ns: u64,
    /// Latency of a write as seen by the processor (write buffer).
    pub write_ns: u64,
    /// Bus occupancy of a written-through word.
    pub bus_word_service_ns: u64,
    /// Latency and bus occupancy of an atomic (locked) operation.
    pub atomic_ns: u64,
}

impl Default for UmaTiming {
    fn default() -> Self {
        Self {
            hit_ns: 150,
            miss_ns: 2000,
            bus_line_service_ns: 1500,
            write_ns: 800,
            bus_word_service_ns: 800,
            atomic_ns: 2400,
        }
    }
}

/// Configuration of the UMA comparator machine.
#[derive(Clone, Debug)]
pub struct UmaConfig {
    /// Number of processors sharing the bus.
    pub procs: usize,
    /// Private cache capacity per processor, in bytes (Sequent model A:
    /// 8 KB).
    pub cache_bytes: usize,
    /// Cache line size in bytes.
    pub line_bytes: usize,
    /// Total shared memory, in 32-bit words.
    pub mem_words: usize,
    /// Timing parameters.
    pub timing: UmaTiming,
    /// Virtual-clock coupling window, as on the NUMA machine: a processor
    /// more than this far ahead of the slowest running processor stalls.
    /// Required for the bus contention model, whose bucketed accounting
    /// assumes clocks stay within the ring's span of each other.
    pub skew_window_ns: Option<u64>,
}

impl Default for UmaConfig {
    fn default() -> Self {
        Self {
            procs: 16,
            cache_bytes: 8 * 1024,
            line_bytes: 16,
            mem_words: 1 << 22,
            timing: UmaTiming::default(),
            skew_window_ns: Some(2_000_000),
        }
    }
}

impl UmaConfig {
    /// Words per cache line.
    pub fn words_per_line(&self) -> usize {
        self.line_bytes / 4
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.procs == 0 {
            return Err("procs must be nonzero".into());
        }
        if !self.line_bytes.is_power_of_two() || self.line_bytes < 4 {
            return Err("line_bytes must be a power of two >= 4".into());
        }
        if !self.cache_bytes.is_multiple_of(self.line_bytes) || self.cache_bytes == 0 {
            return Err("cache_bytes must be a nonzero multiple of line_bytes".into());
        }
        if self.mem_words == 0 {
            return Err("mem_words must be nonzero".into());
        }
        Ok(())
    }
}

/// The shared part of the UMA machine: memory, per-line write versions
/// (for snoop approximation), and the bus.
pub struct UmaMachine {
    cfg: UmaConfig,
    memory: Box<[AtomicU32]>,
    /// One version counter per line-sized chunk of memory; bumped on every
    /// write so that other caches' copies of the line stop hitting
    /// (write-invalidate snooping, approximated).
    line_versions: Box<[AtomicU64]>,
    bus: BucketedResource,
    alloc_next: AtomicU64,
    /// Per-processor published clocks (`u64::MAX` = idle), for the skew
    /// window.
    published: Box<[AtomicU64]>,
}

impl UmaMachine {
    /// Builds the machine.
    pub fn new(cfg: UmaConfig) -> Result<Arc<Self>, String> {
        cfg.validate()?;
        let mut memory = Vec::with_capacity(cfg.mem_words);
        memory.resize_with(cfg.mem_words, || AtomicU32::new(0));
        let nlines = cfg.mem_words.div_ceil(cfg.words_per_line());
        let mut versions = Vec::with_capacity(nlines);
        versions.resize_with(nlines, || AtomicU64::new(0));
        let published = (0..cfg.procs)
            .map(|_| AtomicU64::new(u64::MAX))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Ok(Arc::new(Self {
            cfg,
            memory: memory.into_boxed_slice(),
            line_versions: versions.into_boxed_slice(),
            bus: BucketedResource::new(100_000),
            alloc_next: AtomicU64::new(0),
            published,
        }))
    }

    /// The machine configuration.
    pub fn cfg(&self) -> &UmaConfig {
        &self.cfg
    }

    /// Allocates `words` consecutive words, returning their base address.
    ///
    /// A simple bump allocator; the comparator has no virtual memory.
    ///
    /// # Panics
    ///
    /// Panics when memory is exhausted.
    pub fn alloc_words(&self, words: usize) -> Va {
        let base = self.alloc_next.fetch_add(words as u64, Ordering::Relaxed);
        assert!(
            (base + words as u64) <= self.cfg.mem_words as u64,
            "UMA machine out of memory"
        );
        base * 4
    }

    #[inline]
    pub(crate) fn word(&self, idx: usize) -> &AtomicU32 {
        &self.memory[idx]
    }

    #[inline]
    pub(crate) fn line_version(&self, word_idx: usize) -> u64 {
        self.line_versions[word_idx / self.cfg.words_per_line()].load(Ordering::Relaxed)
    }

    #[inline]
    pub(crate) fn bump_line_version(&self, word_idx: usize) -> u64 {
        self.line_versions[word_idx / self.cfg.words_per_line()].fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Reserves `service_ns` of the shared bus at virtual time `now`;
    /// returns the assigned start time.
    pub(crate) fn bus_reserve(&self, now: u64, service_ns: u64) -> u64 {
        now + self.bus.reserve(now, service_ns)
    }

    pub(crate) fn publish(&self, proc: usize, vtime: u64) {
        self.published[proc].store(vtime, Ordering::Relaxed);
    }

    pub(crate) fn min_running_vtime(&self) -> u64 {
        self.published
            .iter()
            .map(|p| p.load(Ordering::Relaxed))
            .min()
            .unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        UmaConfig::default().validate().unwrap();
        let mut c = UmaConfig {
            line_bytes: 12,
            ..UmaConfig::default()
        };
        assert!(c.validate().is_err());
        c.line_bytes = 16;
        c.procs = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn alloc_is_disjoint() {
        let m = UmaMachine::new(UmaConfig {
            mem_words: 1024,
            ..UmaConfig::default()
        })
        .unwrap();
        let a = m.alloc_words(100);
        let b = m.alloc_words(100);
        assert_eq!(a, 0);
        assert_eq!(b, 400);
    }

    #[test]
    #[should_panic(expected = "out of memory")]
    fn alloc_exhaustion_panics() {
        let m = UmaMachine::new(UmaConfig {
            mem_words: 64,
            ..UmaConfig::default()
        })
        .unwrap();
        let _ = m.alloc_words(65);
    }

    #[test]
    fn bus_queues_under_overload() {
        let m = UmaMachine::new(UmaConfig::default()).unwrap();
        // Below bucket capacity: free.
        assert_eq!(m.bus_reserve(0, 600), 0);
        // Saturate the bucket: later requests queue.
        for _ in 0..200 {
            let _ = m.bus_reserve(0, 600);
        }
        assert!(m.bus_reserve(0, 600) > 0);
    }

    #[test]
    fn line_versions_bump() {
        let m = UmaMachine::new(UmaConfig::default()).unwrap();
        let v0 = m.line_version(0);
        let v1 = m.bump_line_version(0);
        assert_eq!(v1, v0 + 1);
        // Words within the same line share a version.
        assert_eq!(m.line_version(3), v1);
        // Words in a different line do not.
        assert_eq!(m.line_version(4), 0);
    }
}
