//! Simulated processors: shared signalling state and the thread-owned core.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::addr::{PhysPage, ProcId, Vpn};
use crate::atc::{Atc, AtcStats};
use crate::contention::BucketCursor;
use crate::frame::Frame;
use crate::machine::Machine;
use crate::stats::AccessCounters;

/// A processor's virtual clock value meaning "not currently running" —
/// idle processors are excluded from the skew window's minimum.
pub const IDLE: u64 = u64::MAX;

/// The kind of a single-word memory access, for the timing model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// A 32-bit load.
    Read,
    /// A 32-bit store.
    Write,
    /// An atomic read-modify-write (the Butterfly's remote atomics).
    Atomic,
}

/// Per-processor state that *other* processors may touch: the
/// interprocessor-interrupt doorbell and the published virtual clock.
///
/// Everything else about a processor lives in [`ProcCore`], which is owned
/// by the thread simulating that processor — mirroring the paper's
/// insistence on private per-processor structures (§3.1).
pub struct ProcShared {
    /// Doorbell set by `Machine::post_ipi`; cleared by the owning thread.
    ipi_pending: AtomicBool,
    /// The processor's virtual clock as of its last publication, or
    /// [`IDLE`] while the processor is blocked or not started.
    published_vtime: AtomicU64,
}

impl ProcShared {
    pub(crate) fn new() -> Self {
        Self {
            ipi_pending: AtomicBool::new(false),
            published_vtime: AtomicU64::new(IDLE),
        }
    }

    /// Rings the processor's IPI doorbell.
    pub fn post_ipi(&self) {
        self.ipi_pending.store(true, Ordering::Release);
    }

    /// Whether an IPI is pending (without consuming it).
    #[inline]
    pub fn ipi_pending(&self) -> bool {
        self.ipi_pending.load(Ordering::Relaxed)
    }

    /// Consumes the doorbell, returning whether it was rung.
    #[inline(always)]
    pub fn take_ipi(&self) -> bool {
        // Fast path: a relaxed read avoids the RMW when no IPI is pending.
        self.ipi_pending.load(Ordering::Relaxed) && self.ipi_pending.swap(false, Ordering::Acquire)
    }

    /// The last published virtual clock, or [`IDLE`].
    pub fn published_vtime(&self) -> u64 {
        self.published_vtime.load(Ordering::Relaxed)
    }

    fn publish(&self, vtime: u64) {
        self.published_vtime.store(vtime, Ordering::Relaxed);
    }
}

/// The thread-owned core of one simulated processor.
///
/// Exactly one OS thread drives each `ProcCore`; it holds the processor's
/// virtual clock, its private [`Atc`], and its access counters. All timing
/// charges go through here.
pub struct ProcCore {
    machine: Arc<Machine>,
    id: ProcId,
    vtime: u64,
    atc: Atc,
    counters: AccessCounters,
    accesses_since_publish: u32,
    /// Whether the processor is spin-waiting in a synchronization
    /// primitive; waiting processors publish [`IDLE`] so the skew window
    /// never throttles working processors against a frozen clock.
    waiting: bool,
    /// Per-destination word latencies, `lat[to] = [read, write, atomic]`,
    /// resolved from the machine's [`crate::Topology`] at construction so
    /// every charge is one array index — no `Arc<Machine>` → config chase
    /// and no distance-class lookup on the fast path. The topology is
    /// immutable after boot, so the rows never drift.
    lat: Box<[[u64; 3]]>,
    /// Per-destination memory-module service times, same resolution.
    svc: Box<[u64]>,
    /// Cached `MachineConfig::publish_interval`, read on every access by
    /// [`ProcCore::tick`].
    publish_interval: u32,
    /// Cached `MachineConfig::fast_path`.
    fast_enabled: bool,
    /// Per-module contention-bucket cursors (indexed by module id),
    /// keeping the bucket-index division off the fast path. Purely a
    /// host-side memoization: `reserve_with` is result-identical to
    /// `reserve`.
    cursors: Box<[BucketCursor]>,
    /// Cached `&machine.shared(id)`, so the per-access IPI poll skips
    /// the `Arc` walk and bounds check. Valid for the core's lifetime:
    /// the `Arc<Machine>` above keeps the (immovable) shared array alive.
    shared: *const ProcShared,
}

// SAFETY: `shared` points into the `Machine` owned by the core's own
// `Arc`, which moves with it; `ProcShared` itself is `Sync` (atomics).
unsafe impl Send for ProcCore {}

/// The outcome of a [`ProcCore::fast_path`] probe.
pub enum FastPath<'a> {
    /// ATC hit with sufficient rights: the access has been charged
    /// (identically to [`ProcCore::charge_word_access`]) and the caller
    /// performs the data movement on the returned frame.
    Hit(&'a Frame),
    /// ATC hit, but the access is a write and the cached entry is
    /// read-only. Nothing was charged; the caller takes the protection
    /// fault exactly as the slow path would.
    NoRights,
    /// ATC miss. Nothing was charged beyond the miss count; the caller
    /// refills from the Pmap or faults, exactly as the slow path would.
    Miss,
}

impl ProcCore {
    /// Creates the core for processor `id` and marks it running at
    /// virtual time `start`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a valid processor of `machine`.
    pub fn new(machine: Arc<Machine>, id: ProcId, start: u64) -> Self {
        assert!(id < machine.nprocs(), "processor {id} out of range");
        let atc = Atc::new(machine.cfg().atc_entries);
        machine.shared(id).publish(start);
        let topo = machine.topology();
        let lat = (0..machine.nprocs())
            .map(|to| {
                [
                    topo.word_latency(id, to, AccessKind::Read),
                    topo.word_latency(id, to, AccessKind::Write),
                    topo.word_latency(id, to, AccessKind::Atomic),
                ]
            })
            .collect();
        let svc = (0..machine.nprocs())
            .map(|to| topo.service_time(id, to))
            .collect();
        let publish_interval = machine.cfg().publish_interval;
        let fast_enabled = machine.cfg().fast_path;
        let cursors = vec![BucketCursor::default(); machine.cfg().nodes].into_boxed_slice();
        let shared = machine.shared(id) as *const ProcShared;
        Self {
            machine,
            id,
            vtime: start,
            atc,
            counters: AccessCounters::default(),
            accesses_since_publish: 0,
            waiting: false,
            lat,
            svc,
            publish_interval,
            fast_enabled,
            cursors,
            shared,
        }
    }

    /// The processor id (also the node id of its local memory module).
    #[inline]
    pub fn id(&self) -> ProcId {
        self.id
    }

    /// The machine this processor belongs to.
    #[inline]
    pub fn machine(&self) -> &Arc<Machine> {
        &self.machine
    }

    /// The processor's private address translation cache.
    #[inline]
    pub fn atc(&mut self) -> &mut Atc {
        &mut self.atc
    }

    /// The current virtual time, in nanoseconds.
    #[inline]
    pub fn vtime(&self) -> u64 {
        self.vtime
    }

    /// Advances the virtual clock by `ns` (modelled computation).
    #[inline]
    pub fn charge(&mut self, ns: u64) {
        self.vtime += ns;
    }

    /// Advances the virtual clock by `ns` of computation, counting it.
    #[inline]
    pub fn charge_compute(&mut self, ns: u64) {
        self.vtime += ns;
        self.counters.compute_ns += ns;
    }

    /// Moves the clock forward to at least `t` (virtual-time propagation
    /// through synchronization: an acquirer cannot proceed before the
    /// releaser released).
    #[inline]
    pub fn advance_to(&mut self, t: u64) {
        if t > self.vtime {
            self.vtime = t;
        }
    }

    /// Overwrites the clock. Reserved for the run-time synchronization
    /// primitives, which model waiting time analytically instead of
    /// charging each spin iteration.
    pub fn set_vtime(&mut self, t: u64) {
        self.vtime = t;
    }

    /// The processor's access counters so far.
    pub fn counters(&self) -> AccessCounters {
        let mut c = self.counters.clone();
        let s = self.atc.stats();
        c.atc_hits = s.hits;
        c.atc_misses = s.misses;
        c
    }

    /// The ATC's hit/miss counters, without requiring `&mut self`.
    pub fn atc_stats(&self) -> AtcStats {
        self.atc.stats()
    }

    /// Whether the machine's configuration enables the access fast path.
    #[inline]
    pub fn fast_path_enabled(&self) -> bool {
        self.fast_enabled
    }

    /// Mutable access to the counters, for the kernel to record faults.
    pub fn counters_mut(&mut self) -> &mut AccessCounters {
        &mut self.counters
    }

    /// Whether this processor's IPI doorbell is rung, consuming it.
    #[inline(always)]
    pub fn take_ipi(&self) -> bool {
        // SAFETY: `shared` was resolved from `self.machine` at
        // construction and that Arc keeps the array alive and in place.
        unsafe { (*self.shared).take_ipi() }
    }

    /// Publishes the clock and reports whether the skew window requires
    /// this processor to stall.
    ///
    /// The caller (the kernel's access wrapper) is responsible for polling
    /// IPIs while stalled; this method never blocks. A processor that is
    /// spin-waiting ([`ProcCore::begin_wait`]) publishes [`IDLE`] and is
    /// never throttled: its clock is frozen until the event it waits for
    /// arrives, and throttling workers against a frozen clock would
    /// deadlock the machine.
    pub fn should_throttle(&mut self) -> bool {
        let Some(window) = self.machine.cfg().skew_window_ns else {
            return false;
        };
        if self.waiting {
            self.machine.shared(self.id).publish(IDLE);
            return false;
        }
        self.machine.shared(self.id).publish(self.vtime);
        let min = self.machine.min_running_vtime();
        min != IDLE && self.vtime > min.saturating_add(window)
    }

    /// Enters spin-wait mode: the processor stops holding the skew-window
    /// minimum down (it still services IPIs through its accesses).
    pub fn begin_wait(&mut self) {
        self.waiting = true;
        self.machine.shared(self.id).publish(IDLE);
    }

    /// Leaves spin-wait mode.
    pub fn end_wait(&mut self) {
        self.waiting = false;
        let v = self.vtime;
        self.machine.shared(self.id).publish(v);
    }

    /// Periodic publication bookkeeping; returns true every
    /// `publish_interval` accesses so the caller can run the (slightly
    /// more expensive) throttle check.
    #[inline(always)]
    pub fn tick(&mut self) -> bool {
        self.accesses_since_publish += 1;
        if self.accesses_since_publish >= self.publish_interval {
            self.accesses_since_publish = 0;
            true
        } else {
            false
        }
    }

    /// Marks the processor idle (blocked in the kernel or finished); idle
    /// processors do not hold back the skew window.
    pub fn set_idle(&self) {
        self.machine.shared(self.id).publish(IDLE);
    }

    /// Marks the processor running again after [`Self::set_idle`].
    pub fn wake(&mut self) {
        let v = self.vtime;
        self.machine.shared(self.id).publish(v);
    }

    /// Charges one word access to the memory holding `pp` and performs the
    /// module reservation for the contention model. Returns nothing; the
    /// caller performs the actual data movement on the frame.
    pub fn charge_word_access(&mut self, pp: PhysPage, kind: AccessKind) {
        let local = pp.module_id() == self.id;
        let latency = self.lat[pp.module_id()][kind as usize];
        let service = self.svc[pp.module_id()];
        let module = self.machine.module(pp.module_id());
        let start = module.reserve(self.vtime, service);
        let queue_delay = start - self.vtime;
        self.vtime = start + latency;
        self.counters.queue_delay_ns += queue_delay;
        match (local, kind) {
            (true, AccessKind::Read) => self.counters.local_reads += 1,
            (true, AccessKind::Write) => self.counters.local_writes += 1,
            (true, AccessKind::Atomic) => self.counters.local_atomics += 1,
            (false, AccessKind::Read) => self.counters.remote_reads += 1,
            (false, AccessKind::Write) => self.counters.remote_writes += 1,
            (false, AccessKind::Atomic) => self.counters.remote_atomics += 1,
        }
    }

    /// Installs an ATC translation with a resolved frame handle, so hits
    /// on it can take the access fast path.
    ///
    /// Functionally identical to `core.atc().insert(..)`; the only
    /// difference is host-side (the cached pointers).
    pub fn atc_insert(&mut self, asid: u32, vpn: Vpn, pp: PhysPage, writable: bool) {
        let local = pp.module_id() == self.id;
        let module = self.machine.module(pp.module_id());
        let frame = module.frame(pp.frame_id());
        self.atc
            .insert_with_refs(asid, vpn, pp, writable, frame, module, local);
    }

    /// The single-word access fast path: one ATC probe that, on a hit with
    /// sufficient rights, charges the access through the entry's cached
    /// frame handle and hands the frame straight back — no machine table
    /// walk, no kernel involvement.
    ///
    /// Every observable effect (virtual time, queue-delay and access
    /// counters, ATC hit/miss counts, module reservations) is identical to
    /// the reference path of `atc().lookup(..)`, [`Self::charge_word_access`],
    /// and `Machine::frame_data`. On [`FastPath::NoRights`] or
    /// [`FastPath::Miss`] nothing is charged and the caller continues
    /// exactly where the slow path would (protection fault, or Pmap
    /// refill/fault respectively).
    #[inline(always)]
    pub fn fast_path(
        &mut self,
        asid: u32,
        vpn: Vpn,
        write: bool,
        kind: AccessKind,
    ) -> FastPath<'_> {
        let Some((pp, writable, h)) = self.atc.lookup_with_handle(asid, vpn) else {
            return FastPath::Miss;
        };
        if write && !writable {
            return FastPath::NoRights;
        }
        if h.is_null() {
            // Entry installed without resolved pointers (plain insert):
            // charge through the machine as the slow path does.
            self.charge_word_access(pp, kind);
            return FastPath::Hit(self.machine.frame_data(pp));
        }
        // SAFETY: the handle was installed by `atc_insert` on this core
        // from this machine's own storage. Frames and modules are
        // allocated once at boot and never move or free (`free_frame`
        // only retags the inverted page table), and `self.machine` keeps
        // them alive for at least the returned borrow's lifetime.
        let (frame, module) = unsafe { (&*h.frame, &*h.module) };
        let local = h.local;
        let latency = self.lat[pp.module_id()][kind as usize];
        let service = self.svc[pp.module_id()];
        let cursor = &mut self.cursors[pp.module_id()];
        let start = module.reserve_with(cursor, self.vtime, service);
        self.counters.queue_delay_ns += start - self.vtime;
        self.vtime = start + latency;
        match (local, kind) {
            (true, AccessKind::Read) => self.counters.local_reads += 1,
            (true, AccessKind::Write) => self.counters.local_writes += 1,
            (true, AccessKind::Atomic) => self.counters.local_atomics += 1,
            (false, AccessKind::Read) => self.counters.remote_reads += 1,
            (false, AccessKind::Write) => self.counters.remote_writes += 1,
            (false, AccessKind::Atomic) => self.counters.remote_atomics += 1,
        }
        FastPath::Hit(frame)
    }

    /// An uncharged variant of [`Self::fast_path`], for spin reads: the
    /// ATC probe counts identically and the frame is resolved the same
    /// way, but no virtual time or access counters are charged.
    #[inline(always)]
    pub fn fast_probe(&mut self, asid: u32, vpn: Vpn, write: bool) -> FastPath<'_> {
        let Some((pp, writable, h)) = self.atc.lookup_with_handle(asid, vpn) else {
            return FastPath::Miss;
        };
        if write && !writable {
            return FastPath::NoRights;
        }
        if h.is_null() {
            return FastPath::Hit(self.machine.frame_data(pp));
        }
        // SAFETY: as in `fast_path` — the handle points into this
        // machine's immovable frame storage, kept alive by `self.machine`.
        FastPath::Hit(unsafe { &*h.frame })
    }

    /// Charges `n` consecutive word accesses to the module holding `pp`,
    /// for software block copies (`read_block` and friends). Latency is
    /// per word — a software loop on the Butterfly pays full latency per
    /// reference — and the module service is booked across the virtual
    /// time the stream actually spans, one contention bucket at a time,
    /// so a self-paced stream never queues behind itself.
    pub fn charge_word_block(&mut self, pp: PhysPage, kind: AccessKind, n: u64) {
        if n == 0 {
            return;
        }
        let local = pp.module_id() == self.id;
        let latency = self.lat[pp.module_id()][kind as usize];
        let service = self.svc[pp.module_id()];
        let bucket_ns = self.machine.cfg().contention_bucket_ns;
        let module = self.machine.module(pp.module_id());
        let mut remaining = n;
        let mut queue_delay = 0u64;
        while remaining > 0 {
            // Book only the accesses that fall inside the clock's current
            // contention bucket, so a self-paced stream never re-books a
            // bucket it has already filled.
            let into = module.bucket_into(self.vtime);
            let room = (bucket_ns - into).div_ceil(latency.max(1)).max(1);
            let chunk = remaining.min(room);
            let start = module.reserve(self.vtime, service * chunk);
            queue_delay += start - self.vtime;
            self.vtime = start + latency * chunk;
            remaining -= chunk;
        }
        self.counters.queue_delay_ns += queue_delay;
        match (local, kind) {
            (true, AccessKind::Read) => self.counters.local_reads += n,
            (true, AccessKind::Write) => self.counters.local_writes += n,
            (true, AccessKind::Atomic) => self.counters.local_atomics += n,
            (false, AccessKind::Read) => self.counters.remote_reads += n,
            (false, AccessKind::Write) => self.counters.remote_writes += n,
            (false, AccessKind::Atomic) => self.counters.remote_atomics += n,
        }
    }

    /// The resolved word latency this processor pays against the module
    /// on `to`, without charging anything. The translation fabric uses
    /// this to *account* walk costs under its uncharged (centralized)
    /// placement: pure arithmetic, no module reservation, no clock
    /// movement.
    #[inline]
    pub fn word_latency_to(&self, to: usize, kind: AccessKind) -> u64 {
        self.lat[to][kind as usize]
    }

    /// Charges a kernel data-structure reference homed on `module`.
    ///
    /// The paper's fault-handler timings differ by ~40 us depending on
    /// whether "the relevant kernel data structures are local" (§4); the
    /// kernel calls this for each modelled structure touch.
    pub fn charge_kernel_ref(&mut self, module: usize, kind: AccessKind) {
        self.charge_word_access(PhysPage::new(module, 0), kind);
    }

    /// Performs a page-sized block transfer from `src` to `dst`: copies
    /// the data and charges the block-transfer engine's timing, occupying
    /// 75% (configurable) of both modules' bus bandwidth for the duration
    /// (§7).
    ///
    /// # Panics
    ///
    /// Panics if `src` and `dst` name the same frame.
    pub fn block_transfer(&mut self, src: PhysPage, dst: PhysPage) {
        assert_ne!(src, dst, "block transfer onto itself");
        let words = self.machine.cfg().words_per_page() as u64;
        let t = &self.machine.cfg().timing;
        let duration = words * t.block_word_ns;
        let bus_occupancy = duration * t.block_bus_fraction_pct / 100;

        let src_mod = self.machine.module(src.module_id());
        let dst_mod = self.machine.module(dst.module_id());
        // The engine starts when both modules' engines are free and the
        // initiator is ready; the serialization horizon is capped so
        // loosely-coupled clocks cannot queue behind far-future
        // reservations (see `MemoryModule::reserve_block`).
        let cap = 4 * duration;
        let s1 = src_mod.reserve_block(self.vtime, bus_occupancy, cap);
        let ready = if src.module_id() != dst.module_id() {
            dst_mod.reserve_block(s1, bus_occupancy, cap)
        } else {
            s1
        };
        self.counters.queue_delay_ns += ready - self.vtime;
        #[cfg(feature = "trace")]
        if let Some(t) = self.machine.tracer() {
            use platinum_trace::EventKind;
            let route = (src.module_id() as u64) << 32 | dst.module_id() as u64;
            if ready > self.vtime {
                // The engine was busy: the transfer queued behind another
                // (the pivot-row serialization of §5.1).
                t.emit(
                    self.id,
                    self.vtime,
                    EventKind::ContentionStall,
                    0,
                    route,
                    ready - self.vtime,
                );
            }
            t.emit(self.id, ready, EventKind::BlockTransfer, 0, route, duration);
        }
        self.vtime = ready + duration;
        self.counters.block_transfers += 1;
        self.counters.block_words += words;

        let src_frame = self.machine.frame_data(src);
        let dst_frame = self.machine.frame_data(dst);
        dst_frame.copy_from(src_frame);
    }

    /// A block transfer that fails `fraction_pct`% of the way through
    /// (fault injection): the engines are occupied and the initiator
    /// charged for the partial copy, a word prefix actually lands in the
    /// destination frame, and the caller must retry whole-page before
    /// publishing the destination anywhere.
    ///
    /// # Panics
    ///
    /// Panics if `src` and `dst` name the same frame or
    /// `fraction_pct > 100`.
    pub fn failed_block_transfer(&mut self, src: PhysPage, dst: PhysPage, fraction_pct: u64) {
        assert_ne!(src, dst, "block transfer onto itself");
        assert!(fraction_pct <= 100, "fraction is a percentage");
        let words = self.machine.cfg().words_per_page() as u64;
        let t = &self.machine.cfg().timing;
        let copied = words * fraction_pct / 100;
        let duration = copied * t.block_word_ns;
        let bus_occupancy = duration * t.block_bus_fraction_pct / 100;

        let src_mod = self.machine.module(src.module_id());
        let dst_mod = self.machine.module(dst.module_id());
        // Same queueing discipline as a successful transfer, for the
        // shorter duration the engine actually ran.
        let cap = 4 * words * t.block_word_ns;
        let s1 = src_mod.reserve_block(self.vtime, bus_occupancy, cap);
        let ready = if src.module_id() != dst.module_id() {
            dst_mod.reserve_block(s1, bus_occupancy, cap)
        } else {
            s1
        };
        self.counters.queue_delay_ns += ready - self.vtime;
        self.vtime = ready + duration;
        self.counters.block_words += copied;

        let src_frame = self.machine.frame_data(src);
        let dst_frame = self.machine.frame_data(dst);
        dst_frame.copy_prefix_from(src_frame, copied as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn machine(nodes: usize) -> Arc<Machine> {
        Machine::new(MachineConfig {
            nodes,
            frames_per_node: 16,
            skew_window_ns: None,
            ..MachineConfig::default()
        })
        .expect("valid config")
    }

    #[test]
    fn local_vs_remote_charging() {
        let m = machine(2);
        let mut core = ProcCore::new(Arc::clone(&m), 0, 0);
        core.charge_word_access(PhysPage::new(0, 0), AccessKind::Read);
        assert_eq!(core.vtime(), 320);
        core.charge_word_access(PhysPage::new(1, 0), AccessKind::Read);
        assert_eq!(core.vtime(), 320 + 5000);
        let c = core.counters();
        assert_eq!(c.local_reads, 1);
        assert_eq!(c.remote_reads, 1);
    }

    #[test]
    fn failed_block_transfer_leaves_torn_prefix_and_charges_partial_cost() {
        let m = machine(2);
        let words = m.cfg().words_per_page();
        let src = PhysPage::new(0, 0);
        let dst = PhysPage::new(1, 0);
        for w in 0..words {
            m.frame_data(src).store(w, 0x5000 + w as u32);
        }

        let mut core = ProcCore::new(Arc::clone(&m), 0, 0);
        core.failed_block_transfer(src, dst, 50);
        let half = words / 2;
        assert_eq!(
            core.counters().block_words,
            half as u64,
            "half the page moved"
        );
        let partial_vtime = core.vtime();
        assert!(partial_vtime > 0, "the engine ran for the partial copy");
        assert_eq!(m.frame_data(dst).load(half - 1), 0x5000 + half as u32 - 1);
        assert_eq!(
            m.frame_data(dst).load(half),
            0,
            "words past the tear untouched"
        );

        // The whole-page retry overwrites the torn prefix completely.
        core.block_transfer(src, dst);
        for w in 0..words {
            assert_eq!(m.frame_data(dst).load(w), 0x5000 + w as u32);
        }
        let full_cost = core.vtime() - partial_vtime;
        assert!(
            full_cost > partial_vtime,
            "a full transfer costs more than a half transfer ({full_cost} vs {partial_vtime})"
        );
    }

    #[test]
    fn contention_queues_at_module() {
        // Fifteen remote processors hammer node 0's module: each demands
        // 600 ns of service per 5000 ns of latency (12%), so fifteen of
        // them (180%) overload the module and someone must queue.
        let m = machine(16);
        let mut cores: Vec<ProcCore> = (1..16)
            .map(|p| ProcCore::new(Arc::clone(&m), p, 0))
            .collect();
        for _ in 0..200 {
            for c in cores.iter_mut() {
                c.charge_word_access(PhysPage::new(0, 0), AccessKind::Read);
            }
        }
        let total: u64 = cores.iter().map(|c| c.counters().queue_delay_ns).sum();
        assert!(total > 100_000, "sustained overload must queue: {total}");
    }

    #[test]
    fn block_transfer_copies_and_charges() {
        let m = machine(2);
        let mut core = ProcCore::new(Arc::clone(&m), 0, 0);
        let src = PhysPage::new(0, 0);
        let dst = PhysPage::new(1, 0);
        m.frame_data(src).store(17, 0xabcd);
        core.block_transfer(src, dst);
        assert_eq!(m.frame_data(dst).load(17), 0xabcd);
        // 1024 words at 1100 ns each = 1.1264 ms, the paper's ~1.11 ms
        // for a 4 KB page.
        assert_eq!(core.vtime(), 1024 * 1100);
        assert_eq!(core.counters().block_words, 1024);
        // The modules' buses were occupied: word traffic during the
        // transfer queues.
        let mut other = ProcCore::new(Arc::clone(&m), 1, 100_000);
        other.charge_word_access(PhysPage::new(0, 0), AccessKind::Read);
        assert!(
            other.counters().queue_delay_ns > 0,
            "word access during a block transfer must queue"
        );
    }

    #[test]
    fn block_transfers_from_same_source_serialize() {
        let m = machine(3);
        let mut a = ProcCore::new(Arc::clone(&m), 1, 0);
        let mut b = ProcCore::new(Arc::clone(&m), 2, 0);
        a.block_transfer(PhysPage::new(0, 0), PhysPage::new(1, 0));
        b.block_transfer(PhysPage::new(0, 1), PhysPage::new(2, 0));
        // b's transfer could not start until a's released the source
        // engine: this is the hardware serialization the paper blames for
        // pivot-row contention in Gaussian elimination (§5.1).
        let occupancy = 1024 * 1100 * 75 / 100;
        assert_eq!(b.counters().queue_delay_ns, occupancy);
    }

    #[test]
    fn fast_path_matches_reference_path() {
        let m = machine(2);
        let mut fast = ProcCore::new(Arc::clone(&m), 0, 0);
        let mut slow = ProcCore::new(Arc::clone(&m), 0, 0);
        let local = PhysPage::new(0, 0);
        let remote = PhysPage::new(1, 0);
        fast.atc_insert(7, 10, local, true);
        fast.atc_insert(7, 11, remote, false);
        slow.atc().insert(7, 10, local, true);
        slow.atc().insert(7, 11, remote, false);

        // Same access sequence through both paths. Module utilization
        // stays far below a contention bucket, so the shared modules do
        // not couple the two cores' clocks.
        let seq = [
            (10, false, AccessKind::Read),
            (10, true, AccessKind::Write),
            (11, false, AccessKind::Read),
        ];
        for (vpn, write, kind) in seq {
            assert!(matches!(
                fast.fast_path(7, vpn, write, kind),
                FastPath::Hit(_)
            ));
            let (pp, _) = slow.atc().lookup(7, vpn).expect("resident");
            slow.charge_word_access(pp, kind);
        }
        assert_eq!(fast.vtime(), slow.vtime());
        let (cf, cs) = (fast.counters(), slow.counters());
        assert_eq!(cf.local_reads, cs.local_reads);
        assert_eq!(cf.local_writes, cs.local_writes);
        assert_eq!(cf.remote_reads, cs.remote_reads);
        assert_eq!(cf.queue_delay_ns, cs.queue_delay_ns);

        // Writes through a read-only entry and misses charge nothing.
        let before = fast.vtime();
        assert!(matches!(
            fast.fast_path(7, 11, true, AccessKind::Write),
            FastPath::NoRights
        ));
        assert!(matches!(
            fast.fast_path(7, 99, false, AccessKind::Read),
            FastPath::Miss
        ));
        assert_eq!(fast.vtime(), before);

        // Fast-path data movement reaches the same storage.
        if let FastPath::Hit(f) = fast.fast_path(7, 10, true, AccessKind::Write) {
            f.store(3, 0xfeed);
        }
        assert_eq!(m.frame_data(local).load(3), 0xfeed);
    }

    #[test]
    fn hierarchical_topology_charges_by_distance() {
        use crate::config::TimingConfig;
        use crate::topology::Topology;
        // 4 nodes, 2 sockets x 1 die: {0,1} on socket 0, {2,3} on socket 1.
        let mut cfg = MachineConfig {
            nodes: 4,
            frames_per_node: 4,
            skew_window_ns: None,
            ..MachineConfig::default()
        };
        cfg.topology = Some(Topology::hier2(4, 1, &cfg.timing));
        let m = Machine::new(cfg).unwrap();
        let mut core = ProcCore::new(Arc::clone(&m), 0, 0);
        core.charge_word_access(PhysPage::new(1, 0), AccessKind::Read);
        assert_eq!(core.vtime(), 5000, "same-socket read is 1-hop remote");
        core.charge_word_access(PhysPage::new(2, 0), AccessKind::Read);
        assert_eq!(core.vtime(), 5000 + 10_000, "cross-socket read is 2x");
        core.charge_word_access(PhysPage::new(0, 0), AccessKind::Read);
        assert_eq!(core.vtime(), 5000 + 10_000 + 320, "local unchanged");
        // The fast path charges through the same per-destination rows.
        let mut fast = ProcCore::new(Arc::clone(&m), 0, 0);
        fast.atc_insert(7, 10, PhysPage::new(2, 0), false);
        assert!(matches!(
            fast.fast_path(7, 10, false, AccessKind::Read),
            FastPath::Hit(_)
        ));
        assert_eq!(fast.vtime(), 10_000);
        // Counters still classify by on/off node, not by hop count.
        assert_eq!(fast.counters().remote_reads, 1);
        let t = TimingConfig::default();
        assert_eq!(m.ipi_cost(0, 1), t.ipi_ns);
        assert_eq!(m.ipi_cost(0, 2), 2 * t.ipi_ns);
    }

    #[test]
    fn ipi_doorbell() {
        let m = machine(2);
        let core = ProcCore::new(Arc::clone(&m), 0, 0);
        assert!(!core.take_ipi());
        m.post_ipi(0);
        assert!(core.take_ipi());
        assert!(!core.take_ipi(), "doorbell is consumed");
    }

    #[test]
    fn vtime_propagation() {
        let m = machine(1);
        let mut core = ProcCore::new(Arc::clone(&m), 0, 100);
        core.advance_to(50);
        assert_eq!(core.vtime(), 100, "advance_to never goes backwards");
        core.advance_to(500);
        assert_eq!(core.vtime(), 500);
        core.set_vtime(200);
        assert_eq!(core.vtime(), 200, "set_vtime may go backwards");
    }

    #[test]
    fn idle_and_wake_publication() {
        let m = machine(2);
        let mut core = ProcCore::new(Arc::clone(&m), 0, 42);
        assert_eq!(m.shared(0).published_vtime(), 42);
        core.set_idle();
        assert_eq!(m.shared(0).published_vtime(), IDLE);
        core.wake();
        assert_eq!(m.shared(0).published_vtime(), 42);
    }

    #[test]
    fn throttle_respects_window() {
        let m = Machine::new(MachineConfig {
            nodes: 2,
            frames_per_node: 4,
            skew_window_ns: Some(1000),
            ..MachineConfig::default()
        })
        .unwrap();
        let mut fast = ProcCore::new(Arc::clone(&m), 0, 0);
        let _slow = ProcCore::new(Arc::clone(&m), 1, 0);
        assert!(!fast.should_throttle());
        fast.charge(5000);
        assert!(fast.should_throttle(), "5 us ahead of a 1 us window");
        // When the other processor goes idle the window no longer binds.
        m.shared(1).publish(IDLE);
        assert!(!fast.should_throttle());
    }
}
