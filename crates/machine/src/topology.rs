//! Machine descriptions: hierarchical NUMA topologies with per-link-class
//! timing.
//!
//! The paper's Butterfly Plus has exactly two latencies — local and
//! through-the-switch — which [`crate::TimingConfig`] captures as a flat
//! local/remote split. Modern NUMA machines are sockets × dies × cores
//! with a full distance matrix, and at p ≥ 64 the flat split stops being a
//! model at all. A [`Topology`] generalizes the description: every ordered
//! `(from, to)` node pair is assigned a small *distance class*, and each
//! class carries its own word/atomic/IPI latencies and memory-module
//! service time ([`LinkTiming`]). Asymmetric links (a ≠ cost of the
//! reverse direction) are expressible because the class matrix is indexed
//! by ordered pair.
//!
//! Three constructors cover the design space:
//!
//! * [`Topology::flat`] — the paper's machine: class 0 for `from == to`,
//!   class 1 otherwise, timings lifted verbatim from a [`TimingConfig`].
//!   This is the default everywhere and is *bit-identical* to the old
//!   `word_latency(local, kind)` charging (asserted by unit tests and the
//!   kernel's equivalence suites).
//! * [`Topology::hier2`] — a 2-socket × N-die hierarchy with four classes:
//!   self, same-die, same-socket-cross-die (1.5× remote), and
//!   cross-socket (2× remote).
//! * [`Topology::from_matrix`] — an explicit class matrix for measured
//!   machines, asymmetric links included.

use crate::config::TimingConfig;
use crate::proc::AccessKind;

/// Latencies of one distance class, in nanoseconds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinkTiming {
    /// One 32-bit read across this link.
    pub read_ns: u64,
    /// One 32-bit write across this link.
    pub write_ns: u64,
    /// One atomic read-modify-write across this link.
    pub atomic_ns: u64,
    /// Memory-module occupancy per access arriving over this link.
    pub service_ns: u64,
    /// Delivering one interprocessor interrupt across this link.
    pub ipi_ns: u64,
}

impl LinkTiming {
    /// The local-access timings of `t` (class 0 of every built-in).
    pub fn local(t: &TimingConfig) -> Self {
        Self {
            read_ns: t.local_read_ns,
            write_ns: t.local_write_ns,
            atomic_ns: t.local_atomic_ns,
            service_ns: t.module_service_local_ns,
            ipi_ns: t.ipi_ns,
        }
    }

    /// The remote-access timings of `t`, scaled by `num/den` (IPI cost
    /// scales with the same factor; integer arithmetic, so scaled
    /// topologies stay deterministic).
    pub fn remote_scaled(t: &TimingConfig, num: u64, den: u64) -> Self {
        let s = |ns: u64| ns * num / den;
        Self {
            read_ns: s(t.remote_read_ns),
            write_ns: s(t.remote_write_ns),
            atomic_ns: s(t.remote_atomic_ns),
            service_ns: s(t.module_service_remote_ns),
            ipi_ns: s(t.ipi_ns),
        }
    }

    /// Latency of one word access of `kind` across this link.
    #[inline]
    pub fn word_latency(&self, kind: AccessKind) -> u64 {
        match kind {
            AccessKind::Read => self.read_ns,
            AccessKind::Write => self.write_ns,
            AccessKind::Atomic => self.atomic_ns,
        }
    }
}

/// A machine description: node count, a distance-class matrix over ordered
/// node pairs, and per-class timings.
///
/// All latency charging in the simulator routes through this type; see
/// the module docs for the constructors and the flat-equivalence
/// guarantee.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Topology {
    nodes: usize,
    /// `class[from * nodes + to]`, an index into `classes`.
    class: Box<[u8]>,
    classes: Vec<LinkTiming>,
    /// Short name for reports ("flat", "hier2", "matrix").
    name: &'static str,
}

impl Topology {
    /// The paper's flat Butterfly: class 0 on-node, class 1 through the
    /// switch, timings lifted verbatim from `t`. Charging through this
    /// topology is bit-identical to `t.word_latency(local, kind)` /
    /// `t.service_time(local)` / `t.ipi_ns`.
    pub fn flat(nodes: usize, t: &TimingConfig) -> Self {
        Self::build(
            nodes,
            "flat",
            vec![LinkTiming::local(t), LinkTiming::remote_scaled(t, 1, 1)],
            |from, to| u8::from(from != to),
        )
    }

    /// A 2-socket machine, each socket split into `dies_per_socket` dies
    /// of equal size. Four classes: self (local timings), same-die
    /// (remote timings), same-socket-cross-die (1.5× remote), and
    /// cross-socket (2× remote).
    ///
    /// Nodes are numbered socket-major: node `i` is on socket
    /// `i / (nodes/2)`. `nodes` is rounded handling: the split only needs
    /// `nodes >= 2`; uneven tails land in the last die.
    pub fn hier2(nodes: usize, dies_per_socket: usize, t: &TimingConfig) -> Self {
        let per_socket = nodes.div_ceil(2).max(1);
        let per_die = per_socket.div_ceil(dies_per_socket.max(1)).max(1);
        let classes = vec![
            LinkTiming::local(t),
            LinkTiming::remote_scaled(t, 1, 1),
            LinkTiming::remote_scaled(t, 3, 2),
            LinkTiming::remote_scaled(t, 2, 1),
        ];
        Self::build(nodes, "hier2", classes, |from, to| {
            if from == to {
                0
            } else if from / per_socket != to / per_socket {
                3
            } else if from / per_die != to / per_die {
                2
            } else {
                1
            }
        })
    }

    /// An explicit machine description: `class[from * nodes + to]` indexes
    /// `classes`. Asymmetric links are allowed (the matrix is over ordered
    /// pairs).
    ///
    /// Returns an error string when the matrix shape or a class index is
    /// wrong.
    pub fn from_matrix(
        nodes: usize,
        class: Vec<u8>,
        classes: Vec<LinkTiming>,
    ) -> Result<Self, String> {
        if nodes == 0 {
            return Err("topology needs at least one node".to_string());
        }
        if class.len() != nodes * nodes {
            return Err(format!(
                "class matrix must be {nodes}x{nodes} = {} entries, got {}",
                nodes * nodes,
                class.len()
            ));
        }
        if classes.is_empty() {
            return Err("at least one link class required".to_string());
        }
        if let Some(&bad) = class.iter().find(|&&c| c as usize >= classes.len()) {
            return Err(format!(
                "class index {bad} out of range (have {} classes)",
                classes.len()
            ));
        }
        Ok(Self {
            nodes,
            class: class.into_boxed_slice(),
            classes,
            name: "matrix",
        })
    }

    /// Builds a named topology from a class function.
    fn build(
        nodes: usize,
        name: &'static str,
        classes: Vec<LinkTiming>,
        class_of: impl Fn(usize, usize) -> u8,
    ) -> Self {
        let mut class = vec![0u8; nodes * nodes];
        for from in 0..nodes {
            for to in 0..nodes {
                let c = class_of(from, to);
                debug_assert!((c as usize) < classes.len());
                class[from * nodes + to] = c;
            }
        }
        Self {
            nodes,
            class: class.into_boxed_slice(),
            classes,
            name,
        }
    }

    /// Looks up a built-in topology by CLI name: `"flat"` or `"hier2"`
    /// (two dies per socket; `"hier2x4"` for four).
    pub fn by_name(name: &str, nodes: usize, t: &TimingConfig) -> Option<Self> {
        match name {
            "flat" => Some(Self::flat(nodes, t)),
            "hier2" => Some(Self::hier2(nodes, 2, t)),
            "hier2x4" => Some(Self::hier2(nodes, 4, t)),
            _ => None,
        }
    }

    /// The node count this topology describes.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The topology's short name ("flat", "hier2", "matrix").
    #[inline]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The distance class of the ordered pair `(from, to)`.
    #[inline]
    pub fn class_of(&self, from: usize, to: usize) -> u8 {
        self.class[from * self.nodes + to]
    }

    /// The link timings of the ordered pair `(from, to)`.
    #[inline]
    pub fn link(&self, from: usize, to: usize) -> &LinkTiming {
        &self.classes[self.class_of(from, to) as usize]
    }

    /// Latency of one word access of `kind` issued by `from` against the
    /// memory module on `to`.
    #[inline]
    pub fn word_latency(&self, from: usize, to: usize, kind: AccessKind) -> u64 {
        self.link(from, to).word_latency(kind)
    }

    /// Memory-module occupancy on `to` for one access issued by `from`.
    #[inline]
    pub fn service_time(&self, from: usize, to: usize) -> u64 {
        self.link(from, to).service_ns
    }

    /// Cost charged to `from` for interrupting `to`.
    #[inline]
    pub fn ipi_cost(&self, from: usize, to: usize) -> u64 {
        self.link(from, to).ipi_ns
    }

    /// Checks internal consistency against a machine of `nodes` nodes.
    pub fn validate(&self, nodes: usize) -> Result<(), String> {
        if self.nodes != nodes {
            return Err(format!(
                "topology describes {} nodes but the machine has {nodes}",
                self.nodes
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The flat topology must reproduce `TimingConfig`'s latency table
    /// exactly — the kernel's bit-identical equivalence suites rest on
    /// this.
    #[test]
    fn flat_matches_timing_config_exactly() {
        let t = TimingConfig::default();
        let topo = Topology::flat(16, &t);
        for from in 0..16 {
            for to in 0..16 {
                let local = from == to;
                for kind in [AccessKind::Read, AccessKind::Write, AccessKind::Atomic] {
                    assert_eq!(
                        topo.word_latency(from, to, kind),
                        t.word_latency(local, kind),
                        "({from},{to},{kind:?})"
                    );
                }
                assert_eq!(topo.service_time(from, to), t.service_time(local));
                assert_eq!(topo.ipi_cost(from, to), t.ipi_ns);
            }
        }
        assert_eq!(topo.name(), "flat");
    }

    /// 2-hop (cross-socket) reads must cost more than 1-hop (same-die),
    /// with same-socket-cross-die in between.
    #[test]
    fn hier2_two_hop_costs_more_than_one_hop() {
        let t = TimingConfig::default();
        // 16 nodes, 2 sockets x 2 dies: dies are {0..3},{4..7},{8..11},{12..15}.
        let topo = Topology::hier2(16, 2, &t);
        let same_die = topo.word_latency(0, 1, AccessKind::Read);
        let cross_die = topo.word_latency(0, 4, AccessKind::Read);
        let cross_socket = topo.word_latency(0, 8, AccessKind::Read);
        assert_eq!(same_die, t.remote_read_ns);
        assert!(cross_die > same_die, "{cross_die} vs {same_die}");
        assert!(cross_socket > cross_die, "{cross_socket} vs {cross_die}");
        assert_eq!(cross_socket, 2 * t.remote_read_ns);
        // Local access is unchanged by the hierarchy.
        assert_eq!(topo.word_latency(5, 5, AccessKind::Write), t.local_write_ns);
        // IPIs get more expensive with distance too.
        assert!(topo.ipi_cost(0, 8) > topo.ipi_cost(0, 1));
    }

    #[test]
    fn matrix_constructor_validates_and_allows_asymmetry() {
        let t = TimingConfig::default();
        let l = LinkTiming::local(&t);
        let r = LinkTiming::remote_scaled(&t, 1, 1);
        let slow = LinkTiming::remote_scaled(&t, 4, 1);
        // 2 nodes: 0->1 fast remote, 1->0 slow remote (asymmetric link).
        let topo =
            Topology::from_matrix(2, vec![0, 1, 2, 0], vec![l, r, slow]).expect("valid matrix");
        assert!(
            topo.word_latency(1, 0, AccessKind::Read) > topo.word_latency(0, 1, AccessKind::Read)
        );
        assert_eq!(topo.name(), "matrix");
        assert!(topo.validate(2).is_ok());
        assert!(topo.validate(3).is_err());

        assert!(Topology::from_matrix(2, vec![0, 1, 1], vec![]).is_err());
        assert!(Topology::from_matrix(2, vec![0, 9, 0, 0], vec![LinkTiming::local(&t)]).is_err());
        assert!(Topology::from_matrix(0, vec![], vec![LinkTiming::local(&t)]).is_err());
    }

    #[test]
    fn by_name_resolves_builtins() {
        let t = TimingConfig::default();
        assert_eq!(Topology::by_name("flat", 4, &t).unwrap().name(), "flat");
        assert_eq!(Topology::by_name("hier2", 8, &t).unwrap().name(), "hier2");
        assert!(Topology::by_name("torus", 4, &t).is_none());
    }

    #[test]
    fn hier2_covers_uneven_node_counts() {
        let t = TimingConfig::default();
        for nodes in [1usize, 2, 3, 5, 7, 12, 100, 256] {
            let topo = Topology::hier2(nodes, 2, &t);
            assert_eq!(topo.nodes(), nodes);
            for from in 0..nodes {
                assert_eq!(topo.class_of(from, from), 0);
            }
        }
    }
}
