//! Sparse processor/module sets.
//!
//! The original kernel carried every processor set — copyset, writer set,
//! remote-map set, Cmap reference masks, shootdown targets — as a bare
//! `u64`, which silently capped the machine at 64 nodes and made every
//! `1u64 << module` a latent truncation bug on anything larger. [`ProcSet`]
//! is the replacement: a value-type bit set with an inline single-word fast
//! path (machines up to 64 nodes never allocate, so the slow-path
//! zero-allocation guarantee is preserved) that spills to a boxed word
//! array on larger machines. [`AtomicProcSet`] is the lock-free variant
//! used where processors concurrently set and clear membership (reference
//! masks, shootdown acknowledgment words).

use core::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::addr::ProcId;

/// Number of 64-bit words needed to hold ids `0..n`.
#[inline]
fn words_for(n: usize) -> usize {
    n.div_ceil(64).max(1)
}

/// A set of processor (equivalently, node) identifiers.
///
/// Ids below 64 live in an inline word; inserting any id ≥ 64 spills the
/// tail to a boxed slice. All binary operations accept operands of mixed
/// width (missing words read as zero), and equality ignores representation
/// — an inline set equals a spilled set with the same members.
#[derive(Default)]
pub struct ProcSet {
    /// Ids 0..=63.
    w0: u64,
    /// Ids 64.., one word per 64 ids; `None` until an id ≥ 64 is inserted.
    rest: Option<Box<[u64]>>,
}

impl ProcSet {
    /// The empty set.
    #[inline]
    pub const fn empty() -> Self {
        Self { w0: 0, rest: None }
    }

    /// The set containing only `p`.
    #[inline]
    pub fn single(p: ProcId) -> Self {
        let mut s = Self::empty();
        s.insert(p);
        s
    }

    /// The set of all ids `0..n`.
    pub fn full(n: usize) -> Self {
        let mut s = Self::empty();
        if n == 0 {
            return s;
        }
        let words = words_for(n);
        if words > 1 {
            s.grow(words);
        }
        for w in 0..words {
            let bits_here = (n - w * 64).min(64);
            let word = if bits_here == 64 {
                u64::MAX
            } else {
                (1u64 << bits_here) - 1
            };
            *s.word_mut(w) = word;
        }
        s
    }

    /// The set whose low 64 members are the set bits of `mask`.
    #[inline]
    pub fn from_mask(mask: u64) -> Self {
        Self {
            w0: mask,
            rest: None,
        }
    }

    /// The members below 64, as a bitmask (higher members are ignored).
    #[inline]
    pub fn low_mask(&self) -> u64 {
        self.w0
    }

    /// Number of words this set stores.
    #[inline]
    fn words(&self) -> usize {
        1 + self.rest.as_ref().map_or(0, |r| r.len())
    }

    /// Word `i`, reading absent words as zero.
    #[inline]
    fn word(&self, i: usize) -> u64 {
        if i == 0 {
            self.w0
        } else {
            self.rest
                .as_ref()
                .and_then(|r| r.get(i - 1))
                .copied()
                .unwrap_or(0)
        }
    }

    #[inline]
    fn word_mut(&mut self, i: usize) -> &mut u64 {
        if i == 0 {
            &mut self.w0
        } else {
            &mut self.rest.as_mut().expect("word present")[i - 1]
        }
    }

    /// Grows the spilled tail to hold `words` total words.
    fn grow(&mut self, words: usize) {
        let have = self.words();
        if words <= have {
            return;
        }
        let mut new = vec![0u64; words - 1].into_boxed_slice();
        if let Some(old) = &self.rest {
            new[..old.len()].copy_from_slice(old);
        }
        self.rest = Some(new);
    }

    /// Adds `p` to the set.
    #[inline]
    pub fn insert(&mut self, p: ProcId) {
        if p < 64 {
            self.w0 |= 1u64 << p;
        } else {
            let w = p / 64;
            self.grow(w + 1);
            *self.word_mut(w) |= 1u64 << (p % 64);
        }
    }

    /// Removes `p` from the set.
    #[inline]
    pub fn remove(&mut self, p: ProcId) {
        let w = p / 64;
        if w < self.words() {
            *self.word_mut(w) &= !(1u64 << (p % 64));
        }
    }

    /// Whether `p` is a member.
    #[inline]
    pub fn contains(&self, p: ProcId) -> bool {
        self.word(p / 64) & (1u64 << (p % 64)) != 0
    }

    /// Whether the set has no members.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.w0 == 0 && self.rest.as_ref().is_none_or(|r| r.iter().all(|&w| w == 0))
    }

    /// Number of members.
    #[inline]
    pub fn count(&self) -> usize {
        let tail: u32 = self
            .rest
            .as_ref()
            .map_or(0, |r| r.iter().map(|w| w.count_ones()).sum());
        (self.w0.count_ones() + tail) as usize
    }

    /// Empties the set in place, keeping any spilled capacity (so reused
    /// scratch sets stay allocation-free).
    #[inline]
    pub fn clear(&mut self) {
        self.w0 = 0;
        if let Some(r) = &mut self.rest {
            r.fill(0);
        }
    }

    /// Iterates the members in increasing order.
    #[inline]
    pub fn iter(&self) -> ProcSetIter<'_> {
        ProcSetIter {
            set: self,
            word_idx: 0,
            cur: self.w0,
        }
    }

    /// Applies `op` word-by-word against `other`, building a new set.
    fn zip_with(&self, other: &ProcSet, op: impl Fn(u64, u64) -> u64) -> ProcSet {
        let words = self.words().max(other.words());
        let mut out = ProcSet::empty();
        if words > 1 {
            out.grow(words);
        }
        for i in 0..words {
            *out.word_mut(i) = op(self.word(i), other.word(i));
        }
        out
    }

    /// The members present in both sets.
    pub fn intersect(&self, other: &ProcSet) -> ProcSet {
        self.zip_with(other, |a, b| a & b)
    }

    /// The members present in either set.
    pub fn union(&self, other: &ProcSet) -> ProcSet {
        self.zip_with(other, |a, b| a | b)
    }

    /// The members of `self` that are not in `other`.
    pub fn minus(&self, other: &ProcSet) -> ProcSet {
        self.zip_with(other, |a, b| a & !b)
    }

    /// A copy of the set with `p` removed.
    pub fn without(&self, p: ProcId) -> ProcSet {
        let mut s = self.clone();
        s.remove(p);
        s
    }

    /// Whether the two sets share any member.
    pub fn intersects(&self, other: &ProcSet) -> bool {
        let words = self.words().max(other.words());
        (0..words).any(|i| self.word(i) & other.word(i) != 0)
    }

    /// Adds every member of `other` to `self`.
    pub fn insert_all(&mut self, other: &ProcSet) {
        let words = other.words();
        if words > 1 {
            self.grow(words);
        }
        for i in 0..words {
            let w = other.word(i);
            if w != 0 {
                *self.word_mut(i) |= w;
            }
        }
    }
}

impl Clone for ProcSet {
    fn clone(&self) -> Self {
        Self {
            w0: self.w0,
            // Drop an all-zero tail instead of cloning it: keeps clones of
            // drained scratch sets allocation-free.
            rest: self
                .rest
                .as_ref()
                .filter(|r| r.iter().any(|&w| w != 0))
                .cloned(),
        }
    }
}

impl PartialEq for ProcSet {
    fn eq(&self, other: &Self) -> bool {
        let words = self.words().max(other.words());
        (0..words).all(|i| self.word(i) == other.word(i))
    }
}

impl Eq for ProcSet {}

impl fmt::Debug for ProcSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<ProcId> for ProcSet {
    fn from_iter<T: IntoIterator<Item = ProcId>>(iter: T) -> Self {
        let mut s = ProcSet::empty();
        for p in iter {
            s.insert(p);
        }
        s
    }
}

/// Iterator over a [`ProcSet`]'s members.
pub struct ProcSetIter<'a> {
    set: &'a ProcSet,
    word_idx: usize,
    cur: u64,
}

impl Iterator for ProcSetIter<'_> {
    type Item = ProcId;

    #[inline]
    fn next(&mut self) -> Option<ProcId> {
        loop {
            if self.cur != 0 {
                let bit = self.cur.trailing_zeros() as usize;
                self.cur &= self.cur - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words() {
                return None;
            }
            self.cur = self.set.word(self.word_idx);
        }
    }
}

/// A lock-free set of processor ids with a fixed capacity, used where
/// several processors concurrently join and leave (Cmap reference masks)
/// or where shootdown targets clear their own bit while the initiator
/// polls ([`crate::ProcCore`]-driven acknowledgment words).
///
/// Membership updates use acquire-release ordering, matching the
/// reference-mask protocol the `u64` original implemented.
pub struct AtomicProcSet {
    w0: AtomicU64,
    /// Ids 64.., empty (not allocated) on machines of at most 64 nodes.
    rest: Box<[AtomicU64]>,
}

impl AtomicProcSet {
    /// An empty set able to hold ids `0..nprocs`.
    pub fn with_capacity(nprocs: usize) -> Self {
        let words = words_for(nprocs);
        Self {
            w0: AtomicU64::new(0),
            rest: (1..words).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// An atomic copy of `set`, sized to hold every member.
    pub fn from_set(set: &ProcSet) -> Self {
        let s = Self::with_capacity(set.words() * 64);
        for i in 0..set.words() {
            s.word(i).store(set.word(i), Ordering::Relaxed);
        }
        s
    }

    /// Highest id this set can hold, plus one.
    #[inline]
    pub fn capacity(&self) -> usize {
        (1 + self.rest.len()) * 64
    }

    #[inline]
    fn word(&self, i: usize) -> &AtomicU64 {
        if i == 0 {
            &self.w0
        } else {
            &self.rest[i - 1]
        }
    }

    /// Adds `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is beyond the set's capacity — the caller sized the
    /// set for the machine, so an out-of-range id is a kernel bug (this is
    /// the check the old `1u64 << p` masks silently lacked).
    #[inline]
    pub fn insert(&self, p: ProcId) {
        assert!(p < self.capacity(), "id {p} beyond set capacity");
        self.word(p / 64)
            .fetch_or(1u64 << (p % 64), Ordering::AcqRel);
    }

    /// Removes `p` (ids beyond capacity were never members; ignored).
    #[inline]
    pub fn remove(&self, p: ProcId) {
        if p < self.capacity() {
            self.word(p / 64)
                .fetch_and(!(1u64 << (p % 64)), Ordering::AcqRel);
        }
    }

    /// Whether `p` is currently a member.
    #[inline]
    pub fn contains(&self, p: ProcId) -> bool {
        p < self.capacity() && self.word(p / 64).load(Ordering::Acquire) & (1u64 << (p % 64)) != 0
    }

    /// Whether the set is currently empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.w0.load(Ordering::Acquire) == 0
            && self.rest.iter().all(|w| w.load(Ordering::Acquire) == 0)
    }

    /// Whether the current membership shares any id with `set`, without
    /// materializing a snapshot (poll loops spin on this).
    pub fn intersects(&self, set: &ProcSet) -> bool {
        if self.w0.load(Ordering::Acquire) & set.word(0) != 0 {
            return true;
        }
        self.rest
            .iter()
            .enumerate()
            .any(|(i, w)| w.load(Ordering::Acquire) & set.word(i + 1) != 0)
    }

    /// A value snapshot of the membership. Allocation-free on machines of
    /// at most 64 nodes (the snapshot stays inline).
    pub fn load(&self) -> ProcSet {
        let mut s = ProcSet {
            w0: self.w0.load(Ordering::Acquire),
            rest: None,
        };
        if !self.rest.is_empty() && self.rest.iter().any(|w| w.load(Ordering::Acquire) != 0) {
            s.grow(1 + self.rest.len());
            for (i, w) in self.rest.iter().enumerate() {
                *s.word_mut(i + 1) = w.load(Ordering::Acquire);
            }
        }
        s
    }

    /// Overwrites the membership with `set`, growing capacity if needed.
    /// Requires exclusive access (pooled-message reset).
    pub fn store_from(&mut self, set: &ProcSet) {
        let words = set.words();
        if words > 1 + self.rest.len() {
            self.rest = (1..words).map(|_| AtomicU64::new(0)).collect();
        }
        self.w0 = AtomicU64::new(set.word(0));
        for (i, w) in self.rest.iter_mut().enumerate() {
            *w = AtomicU64::new(set.word(i + 1));
        }
    }
}

impl fmt::Debug for AtomicProcSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Atomic{:?}", self.load())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_basics() {
        let mut s = ProcSet::empty();
        assert!(s.is_empty());
        s.insert(0);
        s.insert(5);
        s.insert(63);
        assert_eq!(s.count(), 3);
        assert!(s.contains(5) && !s.contains(6));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 5, 63]);
        s.remove(5);
        assert_eq!(s.count(), 2);
        assert_eq!(s, ProcSet::from_mask((1 << 0) | (1 << 63)));
    }

    #[test]
    fn spill_beyond_64() {
        let mut s = ProcSet::empty();
        s.insert(3);
        s.insert(64);
        s.insert(200);
        assert_eq!(s.count(), 3);
        assert!(s.contains(64) && s.contains(200) && !s.contains(128));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 64, 200]);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 200]);
    }

    #[test]
    fn equality_ignores_representation() {
        let mut spilled = ProcSet::empty();
        spilled.insert(200);
        spilled.insert(7);
        spilled.remove(200); // tail now all-zero but still allocated
        assert_eq!(spilled, ProcSet::single(7));
        assert_eq!(ProcSet::single(7), spilled);
        // A clone of the zero-tailed set drops the tail (and stays equal).
        assert_eq!(spilled.clone(), ProcSet::single(7));
    }

    #[test]
    fn full_and_ops() {
        let f = ProcSet::full(130);
        assert_eq!(f.count(), 130);
        assert!(f.contains(0) && f.contains(129) && !f.contains(130));
        let small = ProcSet::full(64);
        assert_eq!(small.low_mask(), u64::MAX);

        let a: ProcSet = [1usize, 70, 129].into_iter().collect();
        let b: ProcSet = [1usize, 129, 200].into_iter().collect();
        assert_eq!(a.intersect(&b).iter().collect::<Vec<_>>(), vec![1, 129]);
        assert_eq!(
            a.union(&b).iter().collect::<Vec<_>>(),
            vec![1, 70, 129, 200]
        );
        assert_eq!(a.minus(&b).iter().collect::<Vec<_>>(), vec![70]);
        assert!(a.intersects(&b));
        assert!(!a.minus(&b).intersects(&b));
        assert_eq!(a.without(70), [1usize, 129].into_iter().collect());
    }

    #[test]
    fn insert_all_and_clear_keep_capacity() {
        let mut s = ProcSet::empty();
        let big: ProcSet = [10usize, 100].into_iter().collect();
        s.insert_all(&big);
        assert_eq!(s, big);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.words(), 2, "clear keeps the spilled capacity");
        s.insert(100); // no realloc needed
        assert!(s.contains(100));
    }

    #[test]
    fn atomic_roundtrip_small_and_large() {
        let a = AtomicProcSet::with_capacity(4);
        assert_eq!(a.capacity(), 64, "one word minimum");
        a.insert(3);
        a.insert(63);
        assert!(a.contains(3));
        a.remove(3);
        assert_eq!(a.load(), ProcSet::single(63));

        let big = AtomicProcSet::with_capacity(256);
        big.insert(255);
        big.insert(64);
        big.insert(0);
        assert_eq!(big.load().iter().collect::<Vec<_>>(), vec![0, 64, 255]);
        big.remove(64);
        assert!(!big.contains(64));
        assert!(!big.is_empty());
    }

    #[test]
    #[should_panic(expected = "beyond set capacity")]
    fn atomic_insert_out_of_range_panics() {
        AtomicProcSet::with_capacity(64).insert(64);
    }

    #[test]
    fn atomic_store_from_grows() {
        let src: ProcSet = [1usize, 130].into_iter().collect();
        let mut a = AtomicProcSet::with_capacity(2);
        a.store_from(&src);
        assert_eq!(a.load(), src);
        assert!(a.capacity() >= 192);
    }

    #[test]
    fn debug_formats_as_member_list() {
        let s: ProcSet = [2usize, 65].into_iter().collect();
        assert_eq!(format!("{s:?}"), "{2, 65}");
    }

    /// The translation fabric keeps replica directories as
    /// `AtomicProcSet`s sized to the machine; the 63/64/65 widths
    /// straddle the inline-word/spill boundary, where a width or
    /// capacity bug would silently truncate the top processor.
    #[test]
    fn replica_population_at_spill_boundary() {
        for nprocs in [63usize, 64, 65] {
            let holders = AtomicProcSet::with_capacity(nprocs);
            for p in 0..nprocs {
                // Contains-then-insert, as `PmapReplica::join` does.
                assert!(!holders.contains(p), "nprocs={nprocs} p={p}");
                holders.insert(p);
            }
            let set = holders.load();
            assert_eq!(set.count(), nprocs, "nprocs={nprocs}");
            assert_eq!(set, ProcSet::full(nprocs), "nprocs={nprocs}");
            holders.remove(nprocs - 1);
            assert_eq!(holders.load().count(), nprocs - 1, "nprocs={nprocs}");
        }
    }

    /// Concurrent insert/remove/load at each boundary width: every
    /// processor races to flip its own bit while a reader snapshots.
    /// Each bit lands in exactly one word, so the final set must hold
    /// precisely the ids whose last operation was an insert.
    #[test]
    fn atomic_cas_races_at_spill_boundary() {
        for nprocs in [63usize, 64, 65] {
            let holders = AtomicProcSet::with_capacity(nprocs);
            std::thread::scope(|s| {
                for p in 0..nprocs {
                    let holders = &holders;
                    s.spawn(move || {
                        for round in 0..200 {
                            holders.insert(p);
                            // Snapshots may be torn across words but
                            // must never invent a member.
                            let seen = holders.load();
                            for q in seen.iter() {
                                assert!(q < nprocs, "phantom member {q} (nprocs={nprocs})");
                            }
                            if (p + round) % 3 == 0 {
                                holders.remove(p);
                            }
                        }
                        holders.insert(p); // last word: everyone ends a member
                    });
                }
            });
            assert_eq!(holders.load(), ProcSet::full(nprocs), "nprocs={nprocs}");
        }
    }

    /// The shootdown-batch targeting round-trip the fabric performs on
    /// every mapping change: holders ∩ round targets, minus the
    /// initiator — exercised across the boundary so the intersection
    /// mixes inline and spilled operands.
    #[test]
    fn replica_targeting_roundtrip_at_spill_boundary() {
        for nprocs in [63usize, 64, 65] {
            let holders = AtomicProcSet::with_capacity(nprocs);
            // Even processors hold replicas.
            for p in (0..nprocs).step_by(2) {
                holders.insert(p);
            }
            // The shootdown round targets the top three processors.
            let targets: ProcSet = (nprocs - 3..nprocs).collect();
            let me = nprocs - 1;
            let staled = holders.load().intersect(&targets).without(me);
            let expect: Vec<usize> = (nprocs - 3..nprocs - 1).filter(|p| p % 2 == 0).collect();
            assert_eq!(staled.iter().collect::<Vec<_>>(), expect, "nprocs={nprocs}");
            // Escalation drops the staled holders; the survivors are the
            // even processors outside the round.
            for p in staled.iter() {
                holders.remove(p);
            }
            let left = holders.load();
            assert_eq!(
                left.count(),
                (0..nprocs).step_by(2).count() - expect.len(),
                "nprocs={nprocs}"
            );
            assert!(!left.intersects(&staled), "nprocs={nprocs}");
        }
    }
}
