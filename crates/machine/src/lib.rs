//! `numa-machine`: an execution-driven simulator of a NUMA multiprocessor.
//!
//! This crate is the hardware substrate for the PLATINUM reproduction
//! (Cox & Fowler, SOSP 1989). It models a machine in the style of the BBN
//! Butterfly Plus on which the paper's kernel ran:
//!
//! * one processor per node, each with a private *address translation
//!   cache* (ATC) standing in for the MC68851 MMU ([`Atc`]),
//! * one memory module per node holding word-granular page frames backed by
//!   real storage ([`MemoryModule`], [`Frame`]), each with an *inverted page
//!   table* as described in §2.3 of the paper,
//! * an interconnect with per-module contention accounting and a microcoded
//!   *block-transfer engine* that consumes 75% of the bus bandwidth of both
//!   nodes involved (§7),
//! * per-processor *virtual clocks* charged from the paper's published
//!   latencies (320 ns local reference, ~5000 ns remote read, 1100 ns per
//!   word of block transfer), and
//! * interprocessor interrupt lines used by the kernel's shootdown
//!   mechanism (§3.1).
//!
//! The simulator is *execution driven*: application code runs on real OS
//! threads, one per simulated processor, and every load/store goes through
//! [`ProcCore`] where it is translated by the ATC and charged virtual time.
//! Simulated physical memory is real memory (`AtomicU32` words), so page
//! replicas made by the kernel are genuine copies and a coherence bug
//! produces a genuinely wrong application answer.
//!
//! The kernel built on top of this substrate lives in the `platinum` crate;
//! the [`Mem`] trait is the programming interface that applications use so
//! that the same application can run on the PLATINUM kernel, on raw NUMA
//! hardware with hand placement, or on the [`uma`] comparator machine.

#![warn(missing_docs)]

pub mod addr;
pub mod atc;
pub mod config;
pub mod contention;
pub mod frame;
pub mod mem_iface;
pub mod module;
pub mod proc;
pub mod procset;
pub mod stats;
pub mod topology;
pub mod uma;

mod machine;

pub use addr::{proc_bit, procs_in_mask, AccessErr, PhysPage, ProcId, Va, Vpn};
pub use atc::{Atc, AtcStats};
pub use config::{MachineConfig, TimingConfig};
pub use contention::{BucketCursor, BucketedResource};
pub use frame::Frame;
pub use machine::Machine;
pub use mem_iface::Mem;
pub use module::MemoryModule;
pub use proc::{AccessKind, FastPath, ProcCore, ProcShared};
pub use procset::{AtomicProcSet, ProcSet};
pub use stats::AccessCounters;
pub use topology::{LinkTiming, Topology};
