//! Deterministic fault-injection plans for the PLATINUM simulator.
//!
//! PLATINUM's coherence protocol is built out of fragile distributed
//! steps — directory updates, ATC shootdowns, block transfers — and the
//! paper only ever ran it on healthy hardware. A [`FaultPlan`] lets the
//! simulator exercise the protocol's degraded modes: it decides, as a
//! *pure function* of `(seed, site, vtime, key, attempt)`, whether a
//! given protocol step suffers an injected fault. No host randomness is
//! consulted, so a schedule replays bit-identically under the same plan,
//! and two runs of the same deterministic schedule inject the same fault
//! sequence.
//!
//! Liveness is guaranteed by construction: once `attempt` reaches the
//! plan's retry budget, [`FaultPlan::should_inject`] always answers
//! `false`, so every bounded-retry loop in the kernel terminates with a
//! forced success (possibly after escalating to a degraded mode such as
//! freezing the page).

#![warn(missing_docs)]

use std::fmt;

/// Where in the protocol a fault can be injected.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FaultSite {
    /// A transient memory-module error on a frame read (the source of a
    /// replication/migration copy, or a local copy being re-read).
    FrameRead = 0,
    /// A shootdown IPI is lost in transit: the target never sees it and
    /// its ack never arrives until the initiator times out and resends.
    ShootdownAck = 1,
    /// A block transfer fails mid-copy; the whole page must be re-sent.
    BlockTransfer = 2,
    /// A memory module refuses a frame allocation.
    FrameAlloc = 3,
    /// A page-table replica invalidation is lost in transit: the holder
    /// node keeps walking a stale translation replica until the initiator
    /// times out and resends (escalating to dropping the replica).
    PtableInval = 4,
}

impl FaultSite {
    /// Number of sites (rate tables are sized by this).
    pub const COUNT: usize = 5;

    /// Every site, in discriminant order.
    pub const ALL: [FaultSite; FaultSite::COUNT] = [
        FaultSite::FrameRead,
        FaultSite::ShootdownAck,
        FaultSite::BlockTransfer,
        FaultSite::FrameAlloc,
        FaultSite::PtableInval,
    ];

    /// Decodes a discriminant produced by `site as u8`.
    pub fn from_u8(v: u8) -> Option<FaultSite> {
        FaultSite::ALL.get(v as usize).copied()
    }

    /// A short stable name used by reports and traces.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::FrameRead => "frame_read",
            FaultSite::ShootdownAck => "shootdown_ack",
            FaultSite::BlockTransfer => "block_transfer",
            FaultSite::FrameAlloc => "frame_alloc",
            FaultSite::PtableInval => "ptable_inval",
        }
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A seeded, deterministic fault-injection plan.
///
/// Install one through `KernelConfig::faults` (or `SimBuilder::faults`).
/// When no plan is installed the kernel's injection hooks reduce to one
/// pointer test, so healthy runs stay bit-identical and full speed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    /// Per-site injection probability, parts per million.
    rates_ppm: [u32; FaultSite::COUNT],
    /// Injection is forced off once `attempt` reaches this, bounding
    /// every retry ladder.
    max_retries: u32,
    /// Base timeout before a missing shootdown ack is retried; doubles
    /// per attempt (capped) as backoff.
    ack_timeout_ns: u64,
    /// Cost of one re-read of a flaky frame word.
    retry_ns: u64,
    /// Modules that refuse every allocation while the plan is installed
    /// (deterministic pressure for tests; independent of the rates).
    alloc_deny_mask: u64,
}

impl FaultPlan {
    /// A plan that injects nothing (all rates zero) — useful as a base
    /// for the `with_*` builders.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            rates_ppm: [0; FaultSite::COUNT],
            max_retries: 3,
            ack_timeout_ns: 20_000,
            retry_ns: 2_000,
            alloc_deny_mask: 0,
        }
    }

    /// A moderate all-sites plan for chaos soak runs: every site injects
    /// with the given probability (parts per million).
    pub fn chaos(seed: u64, ppm: u32) -> Self {
        Self::new(seed).with_all_rates(ppm)
    }

    /// Sets the injection rate (parts per million) for one site.
    pub fn with_rate(mut self, site: FaultSite, ppm: u32) -> Self {
        self.rates_ppm[site as usize] = ppm.min(1_000_000);
        self
    }

    /// Sets the same injection rate (parts per million) for every site.
    pub fn with_all_rates(mut self, ppm: u32) -> Self {
        for r in &mut self.rates_ppm {
            *r = ppm.min(1_000_000);
        }
        self
    }

    /// Sets the retry budget after which injection is forced off.
    pub fn with_max_retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// Sets the base ack timeout (ns) for the shootdown retry ladder.
    pub fn with_ack_timeout_ns(mut self, ns: u64) -> Self {
        self.ack_timeout_ns = ns;
        self
    }

    /// Marks a set of modules (bitmask) as refusing every allocation.
    pub fn with_alloc_deny_mask(mut self, mask: u64) -> Self {
        self.alloc_deny_mask = mask;
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The injection rate for `site`, parts per million.
    pub fn rate_ppm(&self, site: FaultSite) -> u32 {
        self.rates_ppm[site as usize]
    }

    /// The retry budget: `should_inject` answers `false` for any
    /// `attempt >= max_retries()`.
    pub fn max_retries(&self) -> u32 {
        self.max_retries
    }

    /// The timeout charged before retry number `attempt` of a missing
    /// shootdown ack: exponential backoff, capped at 8x the base.
    pub fn ack_timeout_ns(&self, attempt: u32) -> u64 {
        self.ack_timeout_ns << attempt.saturating_sub(1).min(3)
    }

    /// The modelled cost of one re-read of a flaky frame.
    pub fn retry_ns(&self) -> u64 {
        self.retry_ns
    }

    /// Whether `module` refuses every allocation under this plan.
    pub fn alloc_denied(&self, module: usize) -> bool {
        self.alloc_deny_mask & (1u64 << module) != 0
    }

    /// The injection decision: a pure function of the plan and the
    /// query. `key` disambiguates concurrent queries at the same virtual
    /// time (a frame number, a processor id, a module id); `attempt`
    /// numbers the retries of one recovery ladder, and any attempt at or
    /// past the retry budget is forced to succeed.
    pub fn should_inject(&self, site: FaultSite, vtime: u64, key: u64, attempt: u32) -> bool {
        let rate = self.rates_ppm[site as usize];
        if rate == 0 || attempt >= self.max_retries {
            return false;
        }
        let h = mix(self.seed, site as u64, vtime, key, u64::from(attempt));
        h % 1_000_000 < u64::from(rate)
    }
}

/// SplitMix64-style finalizer over the five query words. The add
/// constant is the 64-bit Fibonacci constant used throughout the repo's
/// hashing.
fn mix(seed: u64, site: u64, vtime: u64, key: u64, attempt: u64) -> u64 {
    const PHI: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut h = seed;
    for w in [site, vtime, key, attempt] {
        h = h.wrapping_add(PHI).wrapping_add(w);
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure() {
        let a = FaultPlan::chaos(7, 100_000);
        let b = FaultPlan::chaos(7, 100_000);
        for v in 0..2_000u64 {
            for site in FaultSite::ALL {
                assert_eq!(
                    a.should_inject(site, v * 31, v, 0),
                    b.should_inject(site, v * 31, v, 0)
                );
            }
        }
    }

    #[test]
    fn seed_changes_the_sequence() {
        let a = FaultPlan::chaos(1, 500_000);
        let b = FaultPlan::chaos(2, 500_000);
        let diff = (0..4_000u64)
            .filter(|&v| {
                a.should_inject(FaultSite::FrameRead, v, 0, 0)
                    != b.should_inject(FaultSite::FrameRead, v, 0, 0)
            })
            .count();
        assert!(diff > 500, "seeds produced near-identical plans: {diff}");
    }

    #[test]
    fn rate_is_roughly_honoured() {
        let p = FaultPlan::new(42).with_rate(FaultSite::ShootdownAck, 250_000);
        let n = 100_000u64;
        let hits = (0..n)
            .filter(|&v| p.should_inject(FaultSite::ShootdownAck, v * 17, v, 0))
            .count() as f64;
        let frac = hits / n as f64;
        assert!((0.2..0.3).contains(&frac), "25% rate measured at {frac}");
        // Other sites stay silent.
        assert!(!(0..n).any(|v| p.should_inject(FaultSite::FrameRead, v * 17, v, 0)));
    }

    #[test]
    fn retry_budget_forces_success() {
        let p = FaultPlan::chaos(3, 1_000_000).with_max_retries(3);
        for v in 0..100u64 {
            assert!(p.should_inject(FaultSite::BlockTransfer, v, 0, 0));
            assert!(p.should_inject(FaultSite::BlockTransfer, v, 0, 2));
            assert!(!p.should_inject(FaultSite::BlockTransfer, v, 0, 3));
            assert!(!p.should_inject(FaultSite::BlockTransfer, v, 0, 99));
        }
    }

    #[test]
    fn backoff_caps() {
        let p = FaultPlan::new(0).with_ack_timeout_ns(1_000);
        assert_eq!(p.ack_timeout_ns(1), 1_000);
        assert_eq!(p.ack_timeout_ns(2), 2_000);
        assert_eq!(p.ack_timeout_ns(4), 8_000);
        assert_eq!(p.ack_timeout_ns(40), 8_000, "backoff is capped");
    }

    #[test]
    fn deny_mask() {
        let p = FaultPlan::new(0).with_alloc_deny_mask(0b101);
        assert!(p.alloc_denied(0));
        assert!(!p.alloc_denied(1));
        assert!(p.alloc_denied(2));
    }
}
