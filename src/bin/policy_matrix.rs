//! Workspace-root alias for the policy matrix, so
//! `cargo run --release --bin policy_matrix` works without `-p`; see
//! `platinum_bench::policy_matrix`.

fn main() {
    platinum_bench::policy_matrix::run()
}
