//! `platinum-repro`: umbrella crate of the PLATINUM reproduction.
//!
//! Re-exports the workspace crates so examples and integration tests can
//! use one dependency. See `README.md` for the tour and `DESIGN.md` for
//! the system inventory.

#![warn(missing_docs)]

pub use numa_machine as machine;
pub use platinum as kernel;
pub use platinum_analysis as analysis;
pub use platinum_apps as apps;
pub use platinum_runtime as runtime;
