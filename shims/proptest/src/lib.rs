//! Offline stand-in for [`proptest`].
//!
//! This build environment has no access to a crate registry, so the
//! workspace vendors the API subset its property tests actually use:
//! range and tuple strategies, [`any`], `prop::collection::vec`,
//! [`prop_oneof!`], [`proptest!`] (with `#![proptest_config(..)]`), and
//! the `prop_assert*` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports the full generated input
//!   instead of a minimized one (`max_shrink_iters` is accepted and
//!   ignored).
//! * **Deterministic.** The RNG is seeded from the test's name, so a
//!   failure reproduces on every run and on every machine. Set
//!   `PROPTEST_SEED=<u64>` to perturb the stream when hunting for more
//!   counterexamples.
//! * Only the strategy combinators used by this workspace exist.

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

pub mod collection;

/// A deterministic 64-bit RNG (SplitMix64), seeded per test.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG with an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// The RNG for a named test: FNV-1a of the name, optionally
    /// perturbed by the `PROPTEST_SEED` environment variable.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(extra) = s.parse::<u64>() {
                h ^= extra;
            }
        }
        Self::from_seed(h)
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, n)`. `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift rejection-free mapping: negligible bias for the
        // small ranges property tests use.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// A uniform value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// An error signalled by a `prop_assert*` macro inside a property test.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed-assertion error with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// How a generated value is produced. The only operation is
/// [`Strategy::generate`]: no shrinking trees.
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Draws one value from this strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy's type (used by [`prop_oneof!`] to unify
    /// heterogeneous arms).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(Rc::clone(&self.0))
    }
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// The strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
    O: fmt::Debug,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased arms (built by [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T: fmt::Debug> Union<T> {
    /// A union over `arms`; must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Types with a canonical "any value" strategy (see [`any`]).
pub trait Arbitrary: fmt::Debug + Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// A strategy over every value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end as u64 - self.start as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Per-`proptest!`-block configuration (subset of the real crate's).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted for compatibility; this shim never shrinks.
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; this shim never rejects values.
    pub max_local_rejects: u32,
    /// Accepted for compatibility.
    pub verbose: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_shrink_iters: 1024,
            max_local_rejects: 65_536,
            verbose: 0,
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng, Union,
    };
}

/// Uniform choice between strategies producing a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Like `assert!`, but fails the current property-test case (the macro
/// `return`s a `TestCaseError`, so it only works inside [`proptest!`]).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Like `assert_eq!`, but fails the current property-test case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), l, r
        );
    }};
}

/// Like `assert_ne!`, but fails the current property-test case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let rendered_input = format!(
                    concat!($("  ", stringify!($arg), " = {:?}\n"),+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\ninput (shrinking not supported by the offline shim):\n{}",
                        case + 1, config.cases, e, rendered_input
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn determinism() {
        let mut a = TestRng::for_test("determinism");
        let mut b = TestRng::for_test("determinism");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(7);
        let s = 3u32..17;
        for _ in 0..1000 {
            let v = s.generate(&mut rng);
            assert!((3..17).contains(&v));
        }
        let f = 0.25f64..0.75;
        for _ in 0..1000 {
            let v = f.generate(&mut rng);
            assert!((0.25..0.75).contains(&v));
        }
    }

    #[test]
    fn oneof_and_map_and_vec() {
        let strat = crate::collection::vec(
            prop_oneof![(0usize..4).prop_map(|n| n * 10), Just(99usize),],
            5..9,
        );
        let mut rng = TestRng::from_seed(42);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((5..9).contains(&v.len()));
            assert!(v.iter().all(|&x| x == 99 || (x % 10 == 0 && x < 40)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn macro_generates_runnable_tests(
            x in 1u64..100,
            pair in (0u32..10, any::<bool>()),
        ) {
            prop_assert!((1..100).contains(&x));
            prop_assert_eq!(pair.0 < 10, true);
        }
    }
}
