//! Collection strategies (`prop::collection::vec`).

use std::fmt;
use std::ops::Range;

use crate::{Strategy, TestRng};

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// A strategy for `Vec`s whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: fmt::Debug,
{
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
