//! Offline stand-in for [`parking_lot`], backed by `std::sync`.
//!
//! This build environment has no access to a crate registry, so the
//! workspace vendors the small API subset it actually uses:
//!
//! * [`Mutex`] / [`MutexGuard`] with non-poisoning `lock` and
//!   `try_lock -> Option`,
//! * [`RwLock`] / [`RwLockReadGuard`] / [`RwLockWriteGuard`],
//! * [`Condvar`] with `wait(&mut MutexGuard)` / `notify_one` /
//!   `notify_all`.
//!
//! Semantics match parking_lot where the workspace depends on them:
//! poisoning is ignored (a panicking holder does not poison the lock for
//! everyone else), and `try_lock` returns `Option` rather than `Result`.
//! Fairness, eventual-fairness timeouts, and the raw APIs of the real
//! crate are not provided.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::TryLockError;

/// A mutual-exclusion primitive (non-poisoning facade over
/// [`std::sync::Mutex`]).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
///
/// Internally holds `Option<std::sync::MutexGuard>` so that
/// [`Condvar::wait`] can take the std guard out and put the reacquired
/// one back, mirroring parking_lot's `wait(&mut guard)` signature.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner: Some(g) }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutably borrows the inner value (no locking needed: `&mut self`
    /// proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized + fmt::Display> fmt::Display for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&**self, f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// A condition variable usable with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases the guarded mutex and waits for a
    /// notification; the mutex is reacquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard taken during wait");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        // parking_lot reports whether a thread was woken; std does not
        // expose that, so conservatively claim one was.
        true
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

/// A reader-writer lock (non-poisoning facade over
/// [`std::sync::RwLock`]).
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// RAII write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(TryLockError::Poisoned(e)) => Some(RwLockReadGuard {
                inner: e.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(TryLockError::Poisoned(e)) => Some(RwLockWriteGuard {
                inner: e.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutably borrows the inner value.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(m.try_lock().map(|g| *g), Some(6));
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
        let r = l.read();
        assert!(l.try_write().is_none());
        assert!(l.try_read().is_some());
        drop(r);
        assert!(l.try_write().is_some());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_one();
        }
        t.join().unwrap();
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(1));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1, "lock usable after holder panicked");
    }
}
