//! Offline stand-in for [`criterion`].
//!
//! This build environment has no access to a crate registry, so the
//! workspace vendors the small benchmarking API it actually uses:
//! [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Methodology is deliberately simple: each benchmark runs a short
//! warm-up, then `sample_size` timed samples, each sized to take roughly
//! 10 ms of wall time, and reports median / mean / min ns-per-iteration
//! on stdout. No plots, no statistical regression, no saved baselines —
//! enough for the A/B comparisons in EXPERIMENTS.md, not a substitute
//! for the real crate's rigor.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall time per measured sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(10);

/// The benchmark driver: collects samples and prints a summary line per
/// benchmark.
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <substring>` filters benchmarks by name, like
        // the real criterion.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self {
            sample_size: 100,
            filter,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark, unless it is excluded by the command-line
    /// name filter.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        // Warm-up and calibration: find an iteration count whose sample
        // takes roughly SAMPLE_TARGET.
        loop {
            f(&mut b);
            if b.elapsed >= SAMPLE_TARGET / 2 || b.iters >= u64::MAX / 4 {
                break;
            }
            let per_iter = b.elapsed.as_nanos().max(1) as u64 / b.iters;
            b.iters =
                (SAMPLE_TARGET.as_nanos() as u64 / per_iter.max(1)).clamp(b.iters * 2, 1 << 40);
        }
        let iters = b.iters;
        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples_ns[samples_ns.len() / 2];
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        let min = samples_ns[0];
        println!(
            "{name:<40} median {median:>12.1} ns/iter   mean {mean:>12.1}   min {min:>12.1}   ({} samples x {} iters)",
            samples_ns.len(),
            iters
        );
        self
    }

    /// Accepted for compatibility; command-line handling happens in
    /// [`Criterion::default`].
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Passed to the benchmark closure; times the routine under test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`, accumulating into the current
    /// sample.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }
}

/// Declares a benchmark group: a function running each target against a
/// shared [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_reports() {
        let mut c = Criterion {
            sample_size: 3,
            filter: None,
        };
        let mut count = 0u64;
        c.bench_function("shim_smoke", |b| {
            b.iter(|| {
                count += 1;
                black_box(count)
            })
        });
        assert!(count > 0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            sample_size: 2,
            filter: Some("only_this".into()),
        };
        let mut ran = false;
        c.bench_function("something_else", |b| {
            ran = true;
            b.iter(|| ());
        });
        assert!(!ran);
    }
}
